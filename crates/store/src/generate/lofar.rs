//! The LOFAR dataset: a large radio-astronomy source catalogue
//! (demo scenario 3).
//!
//! The paper expected "100,000s of tuples and several dozens variables"
//! describing positional and physical properties of light sources. We plant
//! four source populations — compact AGN, extended AGN, star-forming
//! galaxies and imaging artifacts — each with a distinctive spectral and
//! morphological profile across ~40 columns.

use rand::Rng;

use crate::column::Column;
use crate::error::Result;
use crate::sample::rng_from_seed;
use crate::schema::ColumnRole;
use crate::table::{Table, TableBuilder};

use super::{gauss, weighted_index, PlantedTruth};

/// Configuration for [`lofar`].
#[derive(Debug, Clone)]
pub struct LofarConfig {
    /// Number of sources (default 100 000; the demo expects "100,000s").
    pub nrows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LofarConfig {
    fn default() -> Self {
        LofarConfig {
            nrows: 100_000,
            seed: 151,
        }
    }
}

/// Frequency bands (MHz) for the flux columns.
const BANDS: &[u32] = &[120, 128, 136, 144, 152, 160, 168, 176];

/// Population profiles: (name, weight, log-flux base, spectral index mean,
/// size mean arcsec, variability).
const POPULATIONS: &[(&str, f64, f64, f64, f64, f64)] = &[
    ("compact_agn", 0.30, 1.8, -0.3, 2.0, 0.35),
    ("extended_agn", 0.15, 2.4, -0.8, 45.0, 0.15),
    ("star_forming", 0.45, 0.6, -0.7, 8.0, 0.05),
    ("artifact", 0.10, -0.4, 0.9, 1.0, 0.9),
];

/// Generates the LOFAR-like catalogue and its planted population labels.
///
/// # Errors
/// Propagates table-construction errors (not expected for valid configs).
pub fn lofar(config: &LofarConfig) -> Result<(Table, PlantedTruth)> {
    let mut rng = rng_from_seed(config.seed);
    let n = config.nrows;
    let weights: Vec<f64> = POPULATIONS.iter().map(|p| p.1).collect();
    let labels: Vec<usize> = (0..n).map(|_| weighted_index(&mut rng, &weights)).collect();

    let mut ra = Vec::with_capacity(n);
    let mut dec = Vec::with_capacity(n);
    let mut gal_lat = Vec::with_capacity(n);
    let mut fluxes: Vec<Vec<Option<f64>>> = vec![Vec::with_capacity(n); BANDS.len()];
    let mut spectral_index = Vec::with_capacity(n);
    let mut curvature = Vec::with_capacity(n);
    let mut major_axis = Vec::with_capacity(n);
    let mut minor_axis = Vec::with_capacity(n);
    let mut position_angle = Vec::with_capacity(n);
    let mut compactness = Vec::with_capacity(n);
    let mut snr = Vec::with_capacity(n);
    let mut rms_noise = Vec::with_capacity(n);
    let mut fit_quality = Vec::with_capacity(n);
    let mut n_gaussians = Vec::with_capacity(n);
    let mut variability = Vec::with_capacity(n);
    let mut polarization = Vec::with_capacity(n);
    let mut redshift_est = Vec::with_capacity(n);
    let mut nearest_neighbor = Vec::with_capacity(n);

    for &lab in &labels {
        let (_, _, log_flux_base, alpha_mean, size_mean, var) = POPULATIONS[lab];

        // Position: uniform on the survey footprint; declination bounded.
        ra.push(Some(rng.gen::<f64>() * 360.0));
        dec.push(Some(rng.gen::<f64>() * 70.0 + 10.0));
        gal_lat.push(Some(rng.gen::<f64>() * 120.0 - 60.0));

        // Spectrum: log-flux at the reference band plus a power law.
        let log_flux = log_flux_base + 0.8 * gauss(&mut rng);
        let alpha = alpha_mean + 0.15 * gauss(&mut rng);
        let beta = 0.05 * gauss(&mut rng); // spectral curvature
        let f_ref = 10f64.powf(log_flux);
        for (b, &band) in BANDS.iter().enumerate() {
            let lg = (band as f64 / 144.0).log10();
            let f =
                f_ref * 10f64.powf(alpha * lg + beta * lg * lg) * (1.0 + 0.03 * gauss(&mut rng));
            fluxes[b].push(Some(f.max(1e-4)));
        }
        spectral_index.push(Some(alpha));
        curvature.push(Some(beta));

        // Morphology.
        let maj = (size_mean * (1.0 + 0.4 * gauss(&mut rng))).max(0.3);
        let ratio = (0.55 + 0.25 * rng.gen::<f64>()).min(1.0);
        major_axis.push(Some(maj));
        minor_axis.push(Some(maj * ratio));
        position_angle.push(Some(rng.gen::<f64>() * 180.0));
        compactness.push(Some((2.0 / maj).min(2.0) + 0.05 * gauss(&mut rng)));

        // Detection quality.
        let s = (f_ref * 40.0 / (1.0 + maj)).max(1.2) * (1.0 + 0.2 * gauss(&mut rng)).abs();
        snr.push(Some(s));
        rms_noise.push(Some((0.08 + 0.02 * gauss(&mut rng)).max(0.01)));
        fit_quality.push(Some(
            (1.0 - var * 0.4 + 0.1 * gauss(&mut rng)).clamp(0.0, 1.0),
        ));
        n_gaussians.push(Some(if maj > 20.0 {
            rng.gen_range(2..6i64)
        } else {
            1
        }));

        // Physics-ish extras.
        variability.push(Some((var + 0.1 * gauss(&mut rng)).max(0.0)));
        polarization.push(Some((0.02 + 0.05 * rng.gen::<f64>() * var).max(0.0)));
        redshift_est.push(if lab == 3 {
            None // artifacts have no redshift
        } else {
            Some((0.8 + 0.5 * gauss(&mut rng)).clamp(0.01, 6.0))
        });
        nearest_neighbor.push(Some((30.0 * rng.gen::<f64>() + 1.0) * (1.0 + var)));
    }

    let mut builder = TableBuilder::new("lofar")
        .column_with_role(
            "source_id",
            Column::dense_i64((0..n as i64).collect()),
            ColumnRole::Key,
        )?
        .column_with_role(
            "source_name",
            Column::from_strs(
                (0..n)
                    .map(|i| format!("LOFAR J{i:06}"))
                    .collect::<Vec<_>>()
                    .iter()
                    .map(|s| Some(s.as_str())),
            ),
            ColumnRole::Label,
        )?
        .column("ra_deg", Column::from_f64s(ra))?
        .column("dec_deg", Column::from_f64s(dec))?
        .column("gal_lat_deg", Column::from_f64s(gal_lat))?;

    let mut theme_of_column = vec![
        ("ra_deg".to_owned(), 0),
        ("dec_deg".to_owned(), 0),
        ("gal_lat_deg".to_owned(), 0),
    ];

    for (b, &band) in BANDS.iter().enumerate() {
        let name = format!("flux_{band}mhz_jy");
        builder = builder.column(
            name.clone(),
            Column::from_f64s(std::mem::take(&mut fluxes[b])),
        )?;
        theme_of_column.push((name, 1));
    }
    for (name, vals, theme) in [
        ("spectral_index", spectral_index, 1usize),
        ("spectral_curvature", curvature, 1),
        ("major_axis_arcsec", major_axis, 2),
        ("minor_axis_arcsec", minor_axis, 2),
        ("position_angle_deg", position_angle, 2),
        ("compactness", compactness, 2),
        ("snr", snr, 3),
        ("rms_noise_jy", rms_noise, 3),
        ("fit_quality", fit_quality, 3),
        ("variability_idx", variability, 4),
        ("polarization_frac", polarization, 4),
        ("redshift_est", redshift_est, 4),
        ("nearest_neighbor_arcmin", nearest_neighbor, 0),
    ] {
        builder = builder.column(name, Column::from_f64s(vals))?;
        theme_of_column.push((name.to_owned(), theme));
    }
    builder = builder.column("n_gaussians", Column::from_i64s(n_gaussians))?;
    theme_of_column.push(("n_gaussians".to_owned(), 2));

    let table = builder.build()?;
    let truth = PlantedTruth {
        labels,
        theme_of_column,
        theme_names: vec![
            "position".to_owned(),
            "spectrum".to_owned(),
            "morphology".to_owned(),
            "quality".to_owned(),
            "physics".to_owned(),
        ],
    };
    Ok((table, truth))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LofarConfig {
        LofarConfig {
            nrows: 2000,
            ..LofarConfig::default()
        }
    }

    #[test]
    fn shape_has_dozens_of_columns() {
        let (t, truth) = lofar(&small()).unwrap();
        assert_eq!(t.nrows(), 2000);
        assert!(
            t.ncols() >= 25,
            "several dozens of variables, got {}",
            t.ncols()
        );
        assert_eq!(truth.theme_names.len(), 5);
    }

    #[test]
    fn artifacts_lack_redshift() {
        let (t, truth) = lofar(&small()).unwrap();
        let z = t.column_by_name("redshift_est").unwrap();
        for (row, &lab) in truth.labels.iter().enumerate() {
            if lab == 3 {
                assert!(z.get(row).is_null());
            } else {
                assert!(!z.get(row).is_null());
            }
        }
    }

    #[test]
    fn populations_differ_in_size() {
        let (t, truth) = lofar(&small()).unwrap();
        let maj = t.column_by_name("major_axis_arcsec").unwrap();
        let mean_by = |seg: usize| {
            let vals: Vec<f64> = truth
                .labels
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l == seg)
                .filter_map(|(i, _)| maj.numeric_at(i))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            mean_by(1) > mean_by(0) * 5.0,
            "extended AGN are much larger than compact ones"
        );
    }

    #[test]
    fn spectra_follow_power_law() {
        let (t, _) = lofar(&small()).unwrap();
        // Flux at 120 MHz should exceed flux at 176 MHz for steep-spectrum
        // sources on average (negative alpha dominates the mix).
        let f120 = t.column_by_name("flux_120mhz_jy").unwrap();
        let f176 = t.column_by_name("flux_176mhz_jy").unwrap();
        let mut steeper = 0usize;
        for row in 0..t.nrows() {
            if f120.numeric_at(row).unwrap() > f176.numeric_at(row).unwrap() {
                steeper += 1;
            }
        }
        assert!(
            steeper as f64 > t.nrows() as f64 * 0.6,
            "most sources are steep-spectrum, got {steeper}"
        );
    }

    #[test]
    fn deterministic() {
        let (a, _) = lofar(&small()).unwrap();
        let (b, _) = lofar(&small()).unwrap();
        assert_eq!(a, b);
    }
}
