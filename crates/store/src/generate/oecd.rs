//! The Countries & Work dataset: OECD-style regional indicators
//! (demo scenario 2; the paper's running example of Figures 1 and 2).
//!
//! Defaults reproduce the paper's shape: 6 823 regions from 31 countries and
//! 378 columns grouped into themes (labor, unemployment, health, …). The
//! labor theme carries the exact structure of Figure 1b: three clusters
//! separated at *% employees working long hours ≈ 20* and *average income ≈
//! 22 k$*, with countries like Canada, Norway and Switzerland concentrated
//! in the pleasant low-hours / high-income cluster.

use rand::Rng;

use crate::column::Column;
use crate::error::Result;
use crate::sample::{rng_from_seed, StoreRng};
use crate::schema::ColumnRole;
use crate::table::{Table, TableBuilder};

use super::{gauss, weighted_index, PlantedTruth};

/// Configuration for [`oecd`].
#[derive(Debug, Clone)]
pub struct OecdConfig {
    /// Number of regions (paper: 6 823).
    pub nrows: usize,
    /// Total number of columns to emit, including the named headline
    /// indicators but excluding the region / country identifier columns
    /// (paper: 378). Clamped to at least the headline set.
    pub ncols: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cell-level missing rate for filler indicators (real OECD extracts are
    /// sparse; headline indicators stay dense so the running example works).
    pub missing_rate: f64,
}

impl Default for OecdConfig {
    fn default() -> Self {
        OecdConfig {
            nrows: 6823,
            ncols: 378,
            seed: 1961,
            missing_rate: 0.02,
        }
    }
}

/// 31 member countries, as in the paper's dataset.
pub const COUNTRIES: &[&str] = &[
    "Australia",
    "Austria",
    "Belgium",
    "Canada",
    "Chile",
    "Czechia",
    "Denmark",
    "Estonia",
    "Finland",
    "France",
    "Germany",
    "Greece",
    "Hungary",
    "Iceland",
    "Ireland",
    "Israel",
    "Italy",
    "Japan",
    "Korea",
    "Mexico",
    "Netherlands",
    "New Zealand",
    "Norway",
    "Poland",
    "Portugal",
    "Slovakia",
    "Slovenia",
    "Spain",
    "Sweden",
    "Switzerland",
    "United States",
];

/// Countries the paper highlights in the low-hours / high-income cluster.
const PLEASANT: &[&str] = &["Canada", "Norway", "Switzerland", "Denmark", "Netherlands"];

/// Theme layout: name plus the named headline columns it owns.
const THEMES: &[(&str, &[&str])] = &[
    (
        "labor",
        &[
            "pct_employees_long_hours",
            "avg_annual_income_kusd",
            "time_devoted_leisure_h",
        ],
    ),
    (
        "unemployment",
        &[
            "unemployment_rate",
            "long_term_unemployment",
            "female_unemployment",
        ],
    ),
    (
        "health",
        &[
            "pct_health_insurance",
            "life_expectancy",
            "health_spending_pct_gdp",
        ],
    ),
    ("economy", &["gdp_per_capita_kusd", "household_income_kusd"]),
    ("education", &["pct_tertiary_education", "mean_pisa_score"]),
    (
        "environment",
        &["air_pollution_ugm3", "water_quality_index"],
    ),
    ("safety", &["homicide_rate", "self_reported_safety"]),
    ("housing", &["rooms_per_person", "housing_cost_share"]),
    ("community", &["social_support_pct", "volunteering_rate"]),
    ("wellbeing", &["life_satisfaction", "work_life_balance_idx"]),
];

/// Row clusters planted in the labor theme (Figure 1b of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaborCluster {
    /// ≥ 20 % of employees work very long hours.
    Overworked = 0,
    /// < 20 % long hours and average income ≥ 22 k$.
    BalancedRich = 1,
    /// < 20 % long hours and average income < 22 k$.
    BalancedPoor = 2,
}

impl LaborCluster {
    /// Decodes a planted truth label.
    pub fn from_label(label: usize) -> Option<Self> {
        match label {
            0 => Some(LaborCluster::Overworked),
            1 => Some(LaborCluster::BalancedRich),
            2 => Some(LaborCluster::BalancedPoor),
            _ => None,
        }
    }

    /// Human-readable description matching the paper's Figure 1b regions.
    pub fn describe(self) -> &'static str {
        match self {
            LaborCluster::Overworked => "% employees working long hours >= 20",
            LaborCluster::BalancedRich => "long hours < 20, average income >= 22k$",
            LaborCluster::BalancedPoor => "long hours < 20, average income < 22k$",
        }
    }
}

fn pick_country(rng: &mut StoreRng, cluster: usize) -> &'static str {
    if cluster == LaborCluster::BalancedRich as usize && rng.gen::<f64>() < 0.75 {
        PLEASANT[rng.gen_range(0..PLEASANT.len())]
    } else {
        COUNTRIES[rng.gen_range(0..COUNTRIES.len())]
    }
}

/// Generates the Countries & Work table plus ground truth.
///
/// Truth labels are the three labor clusters; `theme_of_column` assigns
/// every attribute column to its theme index in theme-layout order.
///
/// # Errors
/// Propagates table-construction errors (not expected for valid configs).
pub fn oecd(config: &OecdConfig) -> Result<(Table, PlantedTruth)> {
    let mut rng = rng_from_seed(config.seed);
    let n = config.nrows;
    let weights = [0.30, 0.35, 0.35];
    let labels: Vec<usize> = (0..n).map(|_| weighted_index(&mut rng, &weights)).collect();

    // Shared labor factor per row: couples the headline labor columns
    // (and the labor filler indicators) *within* each cluster, so the
    // whole labor theme is mutually dependent, as in the paper's Figure 1.
    let labor_factor: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();

    // Per-theme latent per row: cluster-dependent offset + noise. The labor
    // theme gets the strongest separation; others inherit milder structure.
    let nthemes = THEMES.len();
    let mut latents = vec![vec![0.0f64; nthemes]; n];
    for (row, lat) in latents.iter_mut().enumerate() {
        let c = labels[row];
        for (t, cell) in lat.iter_mut().enumerate() {
            let sep = if t == 0 { 3.0 } else { 1.2 };
            let center = match c {
                0 => -sep,
                1 => sep,
                _ => 0.0,
            };
            // Rotate which cluster sits where across themes so the data is
            // not one global gradient.
            let center = if t % 3 == 1 { -center } else { center };
            *cell = if t == 0 {
                center + 0.9 * labor_factor[row] + 0.45 * gauss(&mut rng)
            } else {
                center + gauss(&mut rng)
            };
        }
    }

    let mut region = Vec::with_capacity(n);
    let mut country = Vec::with_capacity(n);
    for (row, &c) in labels.iter().enumerate() {
        let ctry = pick_country(&mut rng, c);
        country.push(ctry.to_owned());
        region.push(format!("{ctry} region {row:04}"));
    }

    let mut builder = TableBuilder::new("countries_work")
        .column_with_role(
            "region",
            Column::from_strs(region.iter().map(|s| Some(s.as_str()))),
            ColumnRole::Label,
        )?
        .column_with_role(
            "country",
            Column::from_strs(country.iter().map(|s| Some(s.as_str()))),
            ColumnRole::Label,
        )?;

    let mut theme_of_column: Vec<(String, usize)> = Vec::new();

    // Headline labor columns with the exact Figure 1b geometry. The shared
    // per-row labor factor `w` makes hours and income anti-correlated
    // *within* clusters, so the labor theme coheres under MI.
    let mut long_hours = Vec::with_capacity(n);
    let mut income = Vec::with_capacity(n);
    let mut leisure = Vec::with_capacity(n);
    for (row, &c) in labels.iter().enumerate() {
        let w = labor_factor[row];
        let (lh, inc) = match c {
            0 => (
                // Overworked: ≥ 20 % long hours, income spread across the range.
                (26.0 + 3.5 * w + 2.0 * gauss(&mut rng)).max(20.2),
                (20.0 - 4.0 * w + 2.0 * gauss(&mut rng)).max(8.0),
            ),
            1 => (
                (11.0 + 3.0 * w + 1.5 * gauss(&mut rng)).clamp(1.0, 19.8),
                (30.0 - 3.5 * w + 2.0 * gauss(&mut rng)).max(22.3),
            ),
            _ => (
                (12.0 + 3.0 * w + 1.5 * gauss(&mut rng)).clamp(1.0, 19.8),
                (16.0 - 2.0 * w + 1.2 * gauss(&mut rng)).clamp(6.0, 21.7),
            ),
        };
        long_hours.push(Some(lh));
        income.push(Some(inc));
        // Leisure is anti-correlated with long hours (same theme).
        leisure.push(Some(
            (16.5 - 0.12 * lh - 0.4 * w + 0.3 * gauss(&mut rng)).clamp(10.0, 17.5),
        ));
    }
    builder = builder
        .column("pct_employees_long_hours", Column::from_f64s(long_hours))?
        .column("avg_annual_income_kusd", Column::from_f64s(income))?
        .column("time_devoted_leisure_h", Column::from_f64s(leisure))?;
    for name in THEMES[0].1 {
        theme_of_column.push(((*name).to_owned(), 0));
    }

    // Other themes' headline columns: scaled functions of the theme latent.
    for (t, (theme, headliners)) in THEMES.iter().enumerate().skip(1) {
        for (j, name) in headliners.iter().enumerate() {
            let scale = 3.0 + 2.0 * rng.gen::<f64>();
            let shift = match *theme {
                "health" => 75.0,
                "economy" => 35.0,
                "education" => 40.0,
                _ => 20.0,
            } + 3.0 * j as f64;
            let vals: Vec<Option<f64>> = (0..n)
                .map(|row| Some(shift + scale * latents[row][t] + 1.5 * gauss(&mut rng)))
                .collect();
            builder = builder.column((*name).to_owned(), Column::from_f64s(vals))?;
            theme_of_column.push(((*name).to_owned(), t));
        }
    }

    // Filler indicators, round-robin across themes, until ncols is reached.
    let headline_total: usize = THEMES.iter().map(|(_, h)| h.len()).sum();
    let target = config.ncols.max(headline_total);
    let mut fill_idx = vec![0usize; nthemes];
    let mut emitted = headline_total;
    let mut theme_cursor = 0usize;
    while emitted < target {
        let t = theme_cursor % nthemes;
        theme_cursor += 1;
        let name = format!("{}_idx_{:02}", THEMES[t].0, fill_idx[t]);
        fill_idx[t] += 1;
        let scale = 0.8 + 0.6 * rng.gen::<f64>();
        let shift = 10.0 * gauss(&mut rng);
        let vals: Vec<Option<f64>> = (0..n)
            .map(|row| {
                if config.missing_rate > 0.0 && rng.gen::<f64>() < config.missing_rate {
                    None
                } else {
                    Some(shift + scale * latents[row][t] + 0.6 * gauss(&mut rng))
                }
            })
            .collect();
        builder = builder.column(name.clone(), Column::from_f64s(vals))?;
        theme_of_column.push((name, t));
        emitted += 1;
    }

    let table = builder.build()?;
    let truth = PlantedTruth {
        labels,
        theme_of_column,
        theme_names: THEMES.iter().map(|(t, _)| (*t).to_owned()).collect(),
    };
    Ok((table, truth))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OecdConfig {
        OecdConfig {
            nrows: 400,
            ncols: 40,
            ..OecdConfig::default()
        }
    }

    #[test]
    fn paper_shape_by_default() {
        let config = OecdConfig {
            nrows: 300, // keep the test fast; ncols is the interesting part
            ..OecdConfig::default()
        };
        let (t, truth) = oecd(&config).unwrap();
        assert_eq!(t.ncols(), 378 + 2, "378 indicators + region + country");
        assert_eq!(truth.theme_of_column.len(), 378);
        assert_eq!(truth.theme_names.len(), 10);
    }

    #[test]
    fn figure_1b_geometry_holds() {
        let (t, truth) = oecd(&small()).unwrap();
        let lh = t.column_by_name("pct_employees_long_hours").unwrap();
        let inc = t.column_by_name("avg_annual_income_kusd").unwrap();
        for (row, &c) in truth.labels.iter().enumerate() {
            let h = lh.numeric_at(row).unwrap();
            let i = inc.numeric_at(row).unwrap();
            match c {
                0 => assert!(h >= 20.0, "overworked rows sit above the 20% split"),
                1 => {
                    assert!(h < 20.0);
                    assert!(i >= 22.0, "rich cluster sits above the 22k split");
                }
                _ => {
                    assert!(h < 20.0);
                    assert!(i < 22.0);
                }
            }
        }
    }

    #[test]
    fn pleasant_countries_concentrate_in_rich_cluster() {
        let (t, truth) = oecd(&small()).unwrap();
        let country = t.column_by_name("country").unwrap();
        let mut canada_rich = 0usize;
        let mut canada_total = 0usize;
        for row in 0..t.nrows() {
            if country.get(row).as_str() == Some("Canada") {
                canada_total += 1;
                if truth.labels[row] == 1 {
                    canada_rich += 1;
                }
            }
        }
        assert!(canada_total > 0);
        assert!(
            canada_rich * 2 > canada_total,
            "most Canadian regions should be in the pleasant cluster ({canada_rich}/{canada_total})"
        );
    }

    #[test]
    fn countries_list_has_31_entries() {
        assert_eq!(COUNTRIES.len(), 31);
    }

    #[test]
    fn filler_columns_have_missing_values() {
        let (t, _) = oecd(&OecdConfig {
            nrows: 500,
            ncols: 60,
            missing_rate: 0.1,
            ..OecdConfig::default()
        })
        .unwrap();
        let filler = t.column_by_name("labor_idx_00").unwrap();
        assert!(filler.null_count() > 10);
        // Headline columns stay dense.
        assert_eq!(
            t.column_by_name("pct_employees_long_hours")
                .unwrap()
                .null_count(),
            0
        );
    }

    #[test]
    fn labor_cluster_decoding() {
        assert_eq!(LaborCluster::from_label(0), Some(LaborCluster::Overworked));
        assert_eq!(LaborCluster::from_label(7), None);
        assert!(LaborCluster::BalancedRich.describe().contains("22k$"));
    }

    #[test]
    fn deterministic() {
        let (a, _) = oecd(&small()).unwrap();
        let (b, _) = oecd(&small()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ncols_clamped_to_headliners() {
        let (t, _) = oecd(&OecdConfig {
            nrows: 50,
            ncols: 1,
            ..OecdConfig::default()
        })
        .unwrap();
        let headline_total: usize = THEMES.iter().map(|(_, h)| h.len()).sum();
        assert_eq!(t.ncols(), headline_total + 2);
    }
}
