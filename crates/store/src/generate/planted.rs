//! Generic generator with planted row clusters and column themes.
//!
//! Structure of the generated table:
//!
//! * Rows are drawn from `clusters` mixture components. Each (cluster,
//!   theme) pair gets a latent offset; a row's latent value for theme *t* is
//!   `offset[cluster][t] + N(0,1)`.
//! * Every attribute column belongs to exactly one theme and is a noisy
//!   (optionally non-linear) function of that theme's latent — so columns of
//!   the same theme are mutually dependent while columns of different themes
//!   are (nearly) independent given the weak coupling through the cluster
//!   label. This is exactly the structure Blaeu's theme detector must find.
//! * Categorical columns discretize the latent into labelled levels.
//! * A `Key` column (`row_id`) and a `Label` column (entity name) mimic real
//!   tables; preprocessing must drop/skip them.

use rand::Rng;

use crate::column::Column;
use crate::error::Result;
use crate::sample::rng_from_seed;
use crate::schema::ColumnRole;
use crate::table::{Table, TableBuilder};

use super::{gauss, weighted_index};

/// How an attribute column derives from its theme latent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnShape {
    /// `a·z + b + noise` — linear in the latent.
    Linear,
    /// `a·z² + b + noise` — even function: correlation ≈ 0, MI high.
    Quadratic,
    /// `sin(2z) + noise` — oscillating non-linear dependency.
    Sine,
    /// Cycle Linear / Quadratic / Sine across the theme's columns, so the
    /// theme holds together under MI but fragments under linear
    /// correlation (the measure-ablation workload).
    Mixed,
}

/// Specification of one column theme.
#[derive(Debug, Clone)]
pub struct ThemeSpec {
    /// Theme name (used to derive column names: `<name>_0`, `<name>_1`, …).
    pub name: String,
    /// Number of numeric columns in the theme.
    pub numeric_cols: usize,
    /// Number of categorical columns in the theme.
    pub categorical_cols: usize,
    /// Number of category levels for categorical columns.
    pub categories: usize,
    /// Shape of the numeric columns' dependence on the latent.
    pub shape: ColumnShape,
}

impl ThemeSpec {
    /// A purely numeric, linear theme.
    pub fn numeric(name: impl Into<String>, numeric_cols: usize) -> Self {
        ThemeSpec {
            name: name.into(),
            numeric_cols,
            categorical_cols: 0,
            categories: 0,
            shape: ColumnShape::Linear,
        }
    }

    /// Total number of columns contributed by the theme.
    pub fn ncols(&self) -> usize {
        self.numeric_cols + self.categorical_cols
    }
}

/// Configuration for [`planted`].
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Table name.
    pub name: String,
    /// Number of rows.
    pub nrows: usize,
    /// Column themes.
    pub themes: Vec<ThemeSpec>,
    /// Number of planted row clusters.
    pub clusters: usize,
    /// Separation between cluster latent offsets, in standard deviations.
    /// 0 disables row structure (pure theme structure).
    pub cluster_sep: f64,
    /// Relative cluster sizes; empty means equal sizes.
    pub cluster_weights: Vec<f64>,
    /// Standard deviation of per-column noise around the latent function.
    pub noise: f64,
    /// Probability that any attribute cell is NULL.
    pub missing_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            name: "planted".to_owned(),
            nrows: 1000,
            themes: vec![
                ThemeSpec::numeric("theme_a", 4),
                ThemeSpec::numeric("theme_b", 4),
                ThemeSpec::numeric("theme_c", 4),
            ],
            clusters: 3,
            cluster_sep: 4.0,
            cluster_weights: Vec::new(),
            noise: 0.3,
            missing_rate: 0.0,
            seed: 42,
        }
    }
}

/// Ground truth emitted alongside a planted table.
#[derive(Debug, Clone)]
pub struct PlantedTruth {
    /// Planted cluster label per row.
    pub labels: Vec<usize>,
    /// For every *attribute* column (by name): index of its theme.
    pub theme_of_column: Vec<(String, usize)>,
    /// Theme names in index order.
    pub theme_names: Vec<String>,
}

impl PlantedTruth {
    /// Theme index of the named column, if it is an attribute column.
    pub fn theme_of(&self, column: &str) -> Option<usize> {
        self.theme_of_column
            .iter()
            .find(|(name, _)| name == column)
            .map(|&(_, t)| t)
    }
}

/// Generates a table with planted row clusters and column themes.
///
/// # Errors
/// Propagates table-construction errors (only possible with degenerate
/// configurations such as duplicate theme names).
pub fn planted(config: &PlantedConfig) -> Result<(Table, PlantedTruth)> {
    let mut rng = rng_from_seed(config.seed);
    let n = config.nrows;
    let k = config.clusters.max(1);
    let t = config.themes.len();

    // Cluster assignment per row.
    let weights: Vec<f64> = if config.cluster_weights.is_empty() {
        vec![1.0; k]
    } else {
        config.cluster_weights.clone()
    };
    let labels: Vec<usize> = (0..n).map(|_| weighted_index(&mut rng, &weights)).collect();

    // Latent offsets per (cluster, theme): spread on a grid scaled by
    // cluster_sep, with a small random jitter. The cluster order is
    // rotated per theme so clusters are not identically ordered on every
    // theme, while every cluster keeps a distinct center in each theme.
    let mut offsets = vec![vec![0.0f64; t]; k];
    for (c, row) in offsets.iter_mut().enumerate() {
        for (theme, cell) in row.iter_mut().enumerate() {
            let rotated = (c + theme) % k;
            let base = rotated as f64 - (k as f64 - 1.0) / 2.0;
            let jitter = 0.25 * gauss(&mut rng);
            *cell = config.cluster_sep * base + jitter;
        }
    }

    // Latent value per (row, theme).
    let mut latents = vec![vec![0.0f64; t]; n];
    for (row, lat) in latents.iter_mut().enumerate() {
        for (theme, cell) in lat.iter_mut().enumerate() {
            *cell = offsets[labels[row]][theme] + gauss(&mut rng);
        }
    }

    let mut builder = TableBuilder::new(config.name.clone())
        .column_with_role(
            "row_id",
            Column::dense_i64((0..n as i64).collect()),
            ColumnRole::Key,
        )?
        .column_with_role(
            "entity",
            Column::from_strs(
                (0..n)
                    .map(|i| format!("entity_{i}"))
                    .map(Some)
                    .collect::<Vec<_>>()
                    .iter()
                    .map(|s| s.as_deref()),
            ),
            ColumnRole::Label,
        )?;

    let mut theme_of_column = Vec::new();
    for (theme_idx, spec) in config.themes.iter().enumerate() {
        // Numeric columns.
        for c in 0..spec.numeric_cols {
            let name = format!("{}_{c}", spec.name);
            let scale = 0.8 + 0.4 * rng.gen::<f64>();
            let shift = 2.0 * gauss(&mut rng);
            let mut vals = Vec::with_capacity(n);
            for lat in latents.iter().take(n) {
                if config.missing_rate > 0.0 && rng.gen::<f64>() < config.missing_rate {
                    vals.push(None);
                    continue;
                }
                let z = lat[theme_idx];
                let shape = match spec.shape {
                    ColumnShape::Mixed => match c % 3 {
                        0 => ColumnShape::Linear,
                        1 => ColumnShape::Quadratic,
                        _ => ColumnShape::Sine,
                    },
                    other => other,
                };
                let f = match shape {
                    ColumnShape::Linear => scale * z + shift,
                    ColumnShape::Quadratic => scale * z * z + shift,
                    ColumnShape::Sine => (2.0 * z).sin() * scale + shift,
                    ColumnShape::Mixed => unreachable!("resolved above"),
                };
                vals.push(Some(f + config.noise * gauss(&mut rng)));
            }
            builder = builder.column(name.clone(), Column::from_f64s(vals))?;
            theme_of_column.push((name, theme_idx));
        }
        // Categorical columns: quantile-discretized latent with labels.
        for c in 0..spec.categorical_cols {
            let name = format!("{}_cat{c}", spec.name);
            let levels = spec.categories.max(2);
            // Thresholds on the latent; latents are roughly N(offset, 1) per
            // cluster, so use global quantile-ish cuts from a sample.
            let mut sorted: Vec<f64> = latents.iter().map(|l| l[theme_idx]).collect();
            sorted.sort_by(f64::total_cmp);
            let cuts: Vec<f64> = (1..levels)
                .map(|q| sorted[(q * n / levels).min(n - 1)])
                .collect();
            let mut vals: Vec<Option<String>> = Vec::with_capacity(n);
            for lat in latents.iter().take(n) {
                if config.missing_rate > 0.0 && rng.gen::<f64>() < config.missing_rate {
                    vals.push(None);
                    continue;
                }
                let z = lat[theme_idx] + config.noise * gauss(&mut rng);
                let level = cuts.iter().take_while(|&&cut| z > cut).count();
                vals.push(Some(format!("{}_lvl{level}", spec.name)));
            }
            builder = builder.column(
                name.clone(),
                Column::from_strs(vals.iter().map(|o| o.as_deref())),
            )?;
            theme_of_column.push((name, theme_idx));
        }
    }

    let table = builder.build()?;
    let truth = PlantedTruth {
        labels,
        theme_of_column,
        theme_names: config.themes.iter().map(|s| s.name.clone()).collect(),
    };
    Ok((table, truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn shape_matches_config() {
        let config = PlantedConfig {
            nrows: 200,
            ..PlantedConfig::default()
        };
        let (table, truth) = planted(&config).unwrap();
        assert_eq!(table.nrows(), 200);
        // row_id + entity + 3 themes × 4 columns.
        assert_eq!(table.ncols(), 2 + 12);
        assert_eq!(truth.labels.len(), 200);
        assert_eq!(truth.theme_of_column.len(), 12);
        assert_eq!(truth.theme_names.len(), 3);
        assert!(truth.labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn deterministic_per_seed() {
        let config = PlantedConfig {
            nrows: 50,
            ..PlantedConfig::default()
        };
        let (a, ta) = planted(&config).unwrap();
        let (b, tb) = planted(&config).unwrap();
        assert_eq!(a, b);
        assert_eq!(ta.labels, tb.labels);

        let config2 = PlantedConfig { seed: 43, ..config };
        let (c, _) = planted(&config2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn key_and_label_roles_assigned() {
        let (table, _) = planted(&PlantedConfig::default()).unwrap();
        assert_eq!(
            table.schema().field_by_name("row_id").unwrap().role,
            ColumnRole::Key
        );
        assert_eq!(
            table.schema().field_by_name("entity").unwrap().role,
            ColumnRole::Label
        );
        assert_eq!(table.attribute_columns().len(), 12);
    }

    #[test]
    fn within_theme_columns_correlate_more_than_across() {
        let config = PlantedConfig {
            nrows: 600,
            cluster_sep: 0.0, // isolate theme structure from cluster structure
            ..PlantedConfig::default()
        };
        let (table, _) = planted(&config).unwrap();
        let a0: Vec<f64> = table
            .column_by_name("theme_a_0")
            .unwrap()
            .to_f64_vec()
            .into_iter()
            .flatten()
            .collect();
        let a1: Vec<f64> = table
            .column_by_name("theme_a_1")
            .unwrap()
            .to_f64_vec()
            .into_iter()
            .flatten()
            .collect();
        let b0: Vec<f64> = table
            .column_by_name("theme_b_0")
            .unwrap()
            .to_f64_vec()
            .into_iter()
            .flatten()
            .collect();
        let corr = |x: &[f64], y: &[f64]| {
            let n = x.len() as f64;
            let mx = x.iter().sum::<f64>() / n;
            let my = y.iter().sum::<f64>() / n;
            let cov = x
                .iter()
                .zip(y)
                .map(|(a, b)| (a - mx) * (b - my))
                .sum::<f64>();
            let vx = x.iter().map(|a| (a - mx).powi(2)).sum::<f64>();
            let vy = y.iter().map(|b| (b - my).powi(2)).sum::<f64>();
            cov / (vx.sqrt() * vy.sqrt())
        };
        let within = corr(&a0, &a1).abs();
        let across = corr(&a0, &b0).abs();
        assert!(
            within > 0.8,
            "within-theme correlation should be strong, got {within}"
        );
        assert!(
            across < 0.2,
            "cross-theme correlation should be weak, got {across}"
        );
    }

    #[test]
    fn categorical_columns_generated() {
        let config = PlantedConfig {
            nrows: 300,
            themes: vec![ThemeSpec {
                name: "mixed".into(),
                numeric_cols: 1,
                categorical_cols: 2,
                categories: 3,
                shape: ColumnShape::Linear,
            }],
            ..PlantedConfig::default()
        };
        let (table, _) = planted(&config).unwrap();
        let cat = table.column_by_name("mixed_cat0").unwrap();
        assert_eq!(cat.data_type(), DataType::Categorical);
        assert!(cat.distinct_count() <= 3);
        assert!(cat.distinct_count() >= 2);
    }

    #[test]
    fn missing_rate_produces_nulls() {
        let config = PlantedConfig {
            nrows: 500,
            missing_rate: 0.2,
            ..PlantedConfig::default()
        };
        let (table, _) = planted(&config).unwrap();
        let nulls = table.column_by_name("theme_a_0").unwrap().null_count();
        assert!(
            (50..=150).contains(&nulls),
            "expected ~100 NULLs at rate 0.2, got {nulls}"
        );
    }

    #[test]
    fn cluster_weights_skew_sizes() {
        let config = PlantedConfig {
            nrows: 1000,
            clusters: 2,
            cluster_weights: vec![9.0, 1.0],
            ..PlantedConfig::default()
        };
        let (_, truth) = planted(&config).unwrap();
        let c0 = truth.labels.iter().filter(|&&l| l == 0).count();
        assert!(c0 > 800, "cluster 0 should dominate, got {c0}");
    }

    #[test]
    fn truth_theme_lookup() {
        let (_, truth) = planted(&PlantedConfig::default()).unwrap();
        assert_eq!(truth.theme_of("theme_b_2"), Some(1));
        assert_eq!(truth.theme_of("row_id"), None);
    }
}
