//! Select-Project queries.
//!
//! Blaeu users never write SQL; every navigational action implicitly refines
//! a Select-Project query. [`SelectProject`] is that implicit query made
//! explicit: it can be executed against a [`Table`] and rendered as SQL so
//! users can carry their exploration result into a real DBMS.

use std::fmt;

use crate::error::Result;
use crate::predicate::Predicate;
use crate::table::Table;
use crate::view::TableView;

/// A Select-Project query: a conjunction of predicates plus a projection.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectProject {
    /// Projected column names; empty means "all columns".
    pub projection: Vec<String>,
    /// Selection predicate.
    pub predicate: Predicate,
}

impl SelectProject {
    /// The identity query: all rows, all columns.
    pub fn all() -> Self {
        SelectProject {
            projection: Vec::new(),
            predicate: Predicate::True,
        }
    }

    /// Query with a predicate and full projection.
    pub fn filtered(predicate: Predicate) -> Self {
        SelectProject {
            projection: Vec::new(),
            predicate,
        }
    }

    /// Narrows the projection to `columns`.
    pub fn project<S: Into<String>>(mut self, columns: impl IntoIterator<Item = S>) -> Self {
        self.projection = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a conjunct to the predicate.
    pub fn and_where(mut self, pred: Predicate) -> Self {
        self.predicate = Predicate::and([self.predicate, pred]);
        self
    }

    /// Executes the query, materializing a new table.
    ///
    /// # Errors
    /// Propagates unknown-column and type errors from predicate evaluation
    /// and projection.
    pub fn execute(&self, table: &Table) -> Result<Table> {
        let rows = self.predicate.select(table)?;
        let selected = table.take(&rows)?;
        if self.projection.is_empty() {
            Ok(selected)
        } else {
            let names: Vec<&str> = self.projection.iter().map(String::as_str).collect();
            selected.project(&names)
        }
    }

    /// Executes only the selection, returning matching row indices of the
    /// *input* table (useful when the caller wants to keep working with
    /// positions rather than a materialized copy).
    ///
    /// # Errors
    /// Propagates predicate evaluation errors.
    pub fn select_rows(&self, table: &Table) -> Result<Vec<u32>> {
        self.predicate.select(table)
    }

    /// Applies the selection to a view, emitting a narrowed view instead of
    /// a materialized table. The projection does not restrict the result —
    /// views share all columns of their table — but it is preserved in the
    /// query itself for SQL rendering.
    ///
    /// # Errors
    /// Propagates predicate evaluation errors.
    pub fn select_view(&self, view: &TableView) -> Result<TableView> {
        view.filter(&self.predicate)
    }

    /// Renders the query as a SQL statement against `table_name`.
    pub fn to_sql(&self, table_name: &str) -> String {
        let cols = if self.projection.is_empty() {
            "*".to_string()
        } else {
            self.projection
                .iter()
                .map(|c| format!("\"{c}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        match &self.predicate {
            Predicate::True => format!("SELECT {cols} FROM \"{table_name}\";"),
            p => format!("SELECT {cols} FROM \"{table_name}\" WHERE {p};"),
        }
    }
}

impl fmt::Display for SelectProject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql("T"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn table() -> Table {
        TableBuilder::new("countries")
            .column(
                "name",
                Column::from_strs([Some("NL"), Some("CH"), Some("US"), Some("FR")]),
            )
            .unwrap()
            .column(
                "income",
                Column::from_f64s([Some(25.0), Some(35.0), Some(30.0), Some(22.0)]),
            )
            .unwrap()
            .column(
                "hours",
                Column::from_f64s([Some(8.0), Some(9.0), Some(25.0), Some(12.0)]),
            )
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn all_is_identity() {
        let t = table();
        let out = SelectProject::all().execute(&t).unwrap();
        assert_eq!(out, t);
    }

    #[test]
    fn filter_and_project() {
        let t = table();
        let q = SelectProject::filtered(Predicate::lt("hours", 20.0)).project(["name"]);
        let out = q.execute(&t).unwrap();
        assert_eq!(out.ncols(), 1);
        assert_eq!(out.nrows(), 3);
        assert_eq!(out.value(0, "name").unwrap(), Value::Str("NL".into()));
    }

    #[test]
    fn select_view_narrows_without_materializing() {
        let t = std::sync::Arc::new(table());
        let v = TableView::new(std::sync::Arc::clone(&t));
        let q = SelectProject::filtered(Predicate::lt("hours", 20.0)).project(["name"]);
        let narrowed = q.select_view(&v).unwrap();
        assert_eq!(narrowed.nrows(), 3);
        assert!(std::sync::Arc::ptr_eq(narrowed.table(), &t), "shared table");
        // Same rows as the materializing path.
        assert_eq!(
            narrowed.base_rows().unwrap().to_vec(),
            q.select_rows(&t).unwrap()
        );
    }

    #[test]
    fn and_where_accumulates() {
        let t = table();
        let q = SelectProject::all()
            .and_where(Predicate::lt("hours", 20.0))
            .and_where(Predicate::ge("income", 25.0));
        let rows = q.select_rows(&t).unwrap();
        assert_eq!(rows, vec![0, 1]);
    }

    #[test]
    fn sql_rendering() {
        let q = SelectProject::all();
        assert_eq!(q.to_sql("countries"), "SELECT * FROM \"countries\";");

        let q = SelectProject::filtered(Predicate::ge("income", 22.0)).project(["name", "income"]);
        assert_eq!(
            q.to_sql("countries"),
            "SELECT \"name\", \"income\" FROM \"countries\" WHERE \"income\" >= 22;"
        );
    }

    #[test]
    fn display_uses_placeholder_table() {
        let q = SelectProject::all();
        assert_eq!(q.to_string(), "SELECT * FROM \"T\";");
    }

    #[test]
    fn execute_propagates_errors() {
        let t = table();
        let q = SelectProject::all().project(["ghost"]);
        assert!(q.execute(&t).is_err());
    }
}
