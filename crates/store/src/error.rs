//! Error types for the storage engine.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A column name was not found in the schema.
    ColumnNotFound(String),
    /// A column with this name already exists in the table under construction.
    DuplicateColumn(String),
    /// An operation expected a column of one type but found another.
    TypeMismatch {
        /// Column involved in the operation.
        column: String,
        /// Type the operation expected.
        expected: &'static str,
        /// Type actually stored.
        found: &'static str,
    },
    /// Columns appended to a table do not agree on row count.
    LengthMismatch {
        /// Expected number of rows (from the first column).
        expected: usize,
        /// Number of rows in the offending column.
        found: usize,
        /// Name of the offending column.
        column: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row index.
        index: usize,
        /// Number of rows in the table or column.
        nrows: usize,
    },
    /// CSV input could not be parsed.
    CsvParse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A query or sampling parameter was invalid.
    InvalidArgument(String),
    /// An I/O error, carried as a string to keep the error type `Clone`.
    Io(String),
    /// A snapshot file was malformed: bad magic, unsupported version,
    /// checksum mismatch, truncation, or an inconsistent section.
    Snapshot {
        /// Byte offset at which decoding failed (0 for header problems).
        offset: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ColumnNotFound(name) => write!(f, "column not found: {name:?}"),
            StoreError::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            StoreError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch on column {column:?}: expected {expected}, found {found}"
            ),
            StoreError::LengthMismatch {
                expected,
                found,
                column,
            } => write!(
                f,
                "length mismatch: column {column:?} has {found} rows, expected {expected}"
            ),
            StoreError::RowOutOfBounds { index, nrows } => {
                write!(f, "row index {index} out of bounds for {nrows} rows")
            }
            StoreError::CsvParse { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            StoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StoreError::Io(msg) => write!(f, "I/O error: {msg}"),
            StoreError::Snapshot { offset, message } => {
                write!(f, "snapshot error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err.to_string())
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = StoreError::ColumnNotFound("salary".into());
        assert_eq!(e.to_string(), "column not found: \"salary\"");
    }

    #[test]
    fn display_type_mismatch() {
        let e = StoreError::TypeMismatch {
            column: "age".into(),
            expected: "float64",
            found: "categorical",
        };
        assert!(e.to_string().contains("age"));
        assert!(e.to_string().contains("float64"));
        assert!(e.to_string().contains("categorical"));
    }

    #[test]
    fn display_length_mismatch() {
        let e = StoreError::LengthMismatch {
            expected: 10,
            found: 5,
            column: "x".into(),
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let e = StoreError::RowOutOfBounds { index: 3, nrows: 2 };
        assert_eq!(e.clone(), e);
    }
}
