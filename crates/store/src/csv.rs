//! CSV ingestion and export (RFC 4180 subset) with type inference.
//!
//! Blaeu's demo loads external CSV files into the DBMS before exploration
//! (Figure 4 of the paper). This module is that loader: a hand-rolled parser
//! (quoted fields, embedded separators/newlines/quotes), a type-inference
//! pass and a writer for round-tripping.

use std::io::{BufRead, Write};

use crate::column::Column;
use crate::error::{Result, StoreError};
use crate::table::{Table, TableBuilder};
use crate::value::DataType;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: u8,
    /// Whether the first record holds column names (default true).
    pub has_header: bool,
    /// Strings treated as NULL in addition to the empty string
    /// (default: `NA`, `NaN`, `null`, `NULL`).
    pub null_tokens: Vec<String>,
    /// Maximum number of distinct values for an all-string column to be kept
    /// categorical; beyond this the column still loads but is flagged
    /// high-cardinality by callers (default: unlimited).
    pub max_rows: Option<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: b',',
            has_header: true,
            null_tokens: vec![
                "NA".to_owned(),
                "NaN".to_owned(),
                "null".to_owned(),
                "NULL".to_owned(),
            ],
            max_rows: None,
        }
    }
}

/// Splits raw CSV text into records of fields, honoring quotes.
fn parse_records(input: &str, delim: u8) -> Result<Vec<Vec<String>>> {
    let delim = delim as char;
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    let mut saw_any = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(StoreError::CsvParse {
                            line,
                            message: "quote inside unquoted field".to_owned(),
                        });
                    }
                }
                '\r' => {
                    // Swallow; `\r\n` terminates via the `\n` branch.
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c if c == delim => {
                    record.push(std::mem::take(&mut field));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(StoreError::CsvParse {
            line,
            message: "unterminated quoted field".to_owned(),
        });
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    // Fully blank lines carry no record (common CSV convention).
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(records)
}

fn is_null_token(s: &str, opts: &CsvOptions) -> bool {
    s.is_empty() || opts.null_tokens.iter().any(|t| t == s)
}

fn parse_i64(s: &str) -> Option<i64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    t.parse::<i64>().ok()
}

fn parse_f64(s: &str) -> Option<f64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    t.parse::<f64>().ok().filter(|v| v.is_finite())
}

fn parse_bool(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Infers the narrowest [`DataType`] that fits every non-NULL cell of a
/// column: Bool ⊂ Int64 ⊂ Float64, with Categorical as the fallback.
fn infer_type(cells: &[&str], opts: &CsvOptions) -> DataType {
    let mut any = false;
    let mut all_bool = true;
    let mut all_int = true;
    let mut all_float = true;
    for &cell in cells {
        if is_null_token(cell, opts) {
            continue;
        }
        any = true;
        if all_bool && parse_bool(cell).is_none() {
            all_bool = false;
        }
        if all_int && parse_i64(cell).is_none() {
            all_int = false;
        }
        if all_float && parse_f64(cell).is_none() {
            all_float = false;
        }
        if !all_bool && !all_int && !all_float {
            return DataType::Categorical;
        }
    }
    if !any {
        // An all-NULL column carries no evidence; float is the most useful
        // default for downstream numeric handling.
        return DataType::Float64;
    }
    if all_bool {
        DataType::Bool
    } else if all_int {
        DataType::Int64
    } else if all_float {
        DataType::Float64
    } else {
        DataType::Categorical
    }
}

/// Parses CSV text into a [`Table`] with inferred column types.
///
/// # Errors
/// Returns [`StoreError::CsvParse`] for malformed input (ragged rows,
/// unterminated quotes) and propagates table-construction errors.
pub fn read_csv_str(name: &str, input: &str, opts: &CsvOptions) -> Result<Table> {
    let mut records = parse_records(input, opts.delimiter)?;
    if records.is_empty() {
        return TableBuilder::new(name).build();
    }
    let header: Vec<String> = if opts.has_header {
        records.remove(0)
    } else {
        (0..records[0].len()).map(|i| format!("col_{i}")).collect()
    };
    if let Some(cap) = opts.max_rows {
        records.truncate(cap);
    }
    let ncols = header.len();
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != ncols {
            return Err(StoreError::CsvParse {
                line: i + 1 + usize::from(opts.has_header),
                message: format!("expected {ncols} fields, found {}", rec.len()),
            });
        }
    }

    let mut builder = TableBuilder::new(name);
    for (c, col_name) in header.iter().enumerate() {
        let cells: Vec<&str> = records.iter().map(|r| r[c].as_str()).collect();
        let dtype = infer_type(&cells, opts);
        let column = match dtype {
            DataType::Bool => Column::from_bools(cells.iter().map(|&s| {
                if is_null_token(s, opts) {
                    None
                } else {
                    parse_bool(s)
                }
            })),
            DataType::Int64 => Column::from_i64s(cells.iter().map(|&s| {
                if is_null_token(s, opts) {
                    None
                } else {
                    parse_i64(s)
                }
            })),
            DataType::Float64 => Column::from_f64s(cells.iter().map(|&s| {
                if is_null_token(s, opts) {
                    None
                } else {
                    parse_f64(s)
                }
            })),
            DataType::Categorical => Column::from_strs(cells.iter().map(|&s| {
                if is_null_token(s, opts) {
                    None
                } else {
                    Some(s)
                }
            })),
        };
        builder = builder.column(col_name.clone(), column)?;
    }
    builder.build()
}

/// Reads CSV from any buffered reader.
///
/// # Errors
/// Propagates I/O and parse errors.
pub fn read_csv<R: BufRead>(name: &str, mut reader: R, opts: &CsvOptions) -> Result<Table> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    read_csv_str(name, &buf, opts)
}

/// Reads a CSV file from disk.
///
/// # Errors
/// Propagates I/O and parse errors.
pub fn read_csv_file(path: &std::path::Path, opts: &CsvOptions) -> Result<Table> {
    let file = std::fs::File::open(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_owned();
    read_csv(&name, std::io::BufReader::new(file), opts)
}

fn needs_quoting(s: &str, delim: u8) -> bool {
    s.bytes()
        .any(|b| b == delim || b == b'"' || b == b'\n' || b == b'\r')
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

/// Writes a table as CSV.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv<W: Write>(table: &Table, writer: W, opts: &CsvOptions) -> Result<()> {
    write_cells(
        &table.schema().names(),
        table.nrows(),
        |row, col| table.column(col).get(row),
        writer,
        opts,
    )
}

/// Writes a view as CSV, streaming straight from the shared columns — no
/// sub-table is materialized for the export.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv_view<W: Write>(
    view: &crate::view::TableView,
    writer: W,
    opts: &CsvOptions,
) -> Result<()> {
    let cols: Vec<crate::view::ColumnView<'_>> = (0..view.ncols()).map(|c| view.col(c)).collect();
    write_cells(
        &view.schema().names(),
        view.nrows(),
        |row, col| cols[col].get(row),
        writer,
        opts,
    )
}

fn write_cells<W: Write>(
    names: &[&str],
    nrows: usize,
    cell: impl Fn(usize, usize) -> crate::value::Value,
    mut writer: W,
    opts: &CsvOptions,
) -> Result<()> {
    let delim = opts.delimiter as char;
    if opts.has_header {
        let header: Vec<String> = names
            .iter()
            .map(|n| {
                if needs_quoting(n, opts.delimiter) {
                    quote(n)
                } else {
                    (*n).to_owned()
                }
            })
            .collect();
        writeln!(writer, "{}", header.join(&delim.to_string()))?;
    }
    for row in 0..nrows {
        let mut fields = Vec::with_capacity(names.len());
        for col in 0..names.len() {
            let v = cell(row, col);
            let s = if v.is_null() {
                String::new()
            } else {
                v.to_string()
            };
            fields.push(if needs_quoting(&s, opts.delimiter) {
                quote(&s)
            } else {
                s
            });
        }
        writeln!(writer, "{}", fields.join(&delim.to_string()))?;
    }
    Ok(())
}

/// Renders a table as a CSV string.
///
/// # Errors
/// Never fails in practice (in-memory writer); kept fallible for symmetry.
pub fn write_csv_string(table: &Table, opts: &CsvOptions) -> Result<String> {
    let mut buf = Vec::new();
    write_csv(table, &mut buf, opts)?;
    String::from_utf8(buf).map_err(|e| StoreError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn parses_simple_csv() {
        let t = read_csv_str("t", "a,b,c\n1,2.5,x\n2,3.5,y\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.schema().field(0).dtype, DataType::Int64);
        assert_eq!(t.schema().field(1).dtype, DataType::Float64);
        assert_eq!(t.schema().field(2).dtype, DataType::Categorical);
        assert_eq!(t.value(1, "c").unwrap(), Value::Str("y".into()));
    }

    #[test]
    fn infers_bool() {
        let t = read_csv_str("t", "flag\ntrue\nfalse\nTRUE\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.schema().field(0).dtype, DataType::Bool);
        assert_eq!(t.value(2, "flag").unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_tokens_become_nulls() {
        let t = read_csv_str("t", "x\n1.5\nNA\n\n2.5\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.value(1, "x").unwrap(), Value::Null);
        assert_eq!(t.column_by_name("x").unwrap().null_count(), 1);
    }

    #[test]
    fn int_column_with_nulls_stays_int() {
        let t = read_csv_str("t", "n\n1\nNA\n3\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.schema().field(0).dtype, DataType::Int64);
        assert_eq!(t.value(1, "n").unwrap(), Value::Null);
    }

    #[test]
    fn quoted_fields_with_delimiters_and_newlines() {
        let input = "name,notes\n\"Doe, John\",\"line1\nline2\"\nplain,\"say \"\"hi\"\"\"\n";
        let t = read_csv_str("t", input, &CsvOptions::default()).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.value(0, "name").unwrap(), Value::Str("Doe, John".into()));
        assert_eq!(
            t.value(0, "notes").unwrap(),
            Value::Str("line1\nline2".into())
        );
        assert_eq!(
            t.value(1, "notes").unwrap(),
            Value::Str("say \"hi\"".into())
        );
    }

    #[test]
    fn ragged_rows_error() {
        let err = read_csv_str("t", "a,b\n1\n", &CsvOptions::default());
        assert!(matches!(err, Err(StoreError::CsvParse { .. })));
    }

    #[test]
    fn unterminated_quote_errors() {
        let err = read_csv_str("t", "a\n\"oops\n", &CsvOptions::default());
        assert!(matches!(err, Err(StoreError::CsvParse { .. })));
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "1,2\n3,4\n", &opts).unwrap();
        assert_eq!(t.schema().names(), vec!["col_0", "col_1"]);
        assert_eq!(t.nrows(), 2);
    }

    #[test]
    fn max_rows_truncates() {
        let opts = CsvOptions {
            max_rows: Some(1),
            ..CsvOptions::default()
        };
        let t = read_csv_str("t", "a\n1\n2\n3\n", &opts).unwrap();
        assert_eq!(t.nrows(), 1);
    }

    #[test]
    fn missing_final_newline_ok() {
        let t = read_csv_str("t", "a\n1\n2", &CsvOptions::default()).unwrap();
        assert_eq!(t.nrows(), 2);
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_csv_str("t", "a,b\r\n1,x\r\n2,y\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.value(0, "b").unwrap(), Value::Str("x".into()));
    }

    #[test]
    fn empty_input_gives_empty_table() {
        let t = read_csv_str("t", "", &CsvOptions::default()).unwrap();
        assert_eq!(t.nrows(), 0);
        assert_eq!(t.ncols(), 0);
    }

    #[test]
    fn roundtrip_write_read() {
        let original = read_csv_str(
            "t",
            "name,score,tag\nalice,1.5,x\n\"b,ob\",NA,\"q\"\"t\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let rendered = write_csv_string(&original, &CsvOptions::default()).unwrap();
        let reparsed = read_csv_str("t", &rendered, &CsvOptions::default()).unwrap();
        assert_eq!(reparsed.nrows(), original.nrows());
        for row in 0..original.nrows() {
            assert_eq!(reparsed.row(row).unwrap(), original.row(row).unwrap());
        }
    }

    #[test]
    fn all_null_column_defaults_to_float() {
        let t = read_csv_str("t", "x\nNA\nNA\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.schema().field(0).dtype, DataType::Float64);
        assert_eq!(t.column_by_name("x").unwrap().null_count(), 2);
    }

    #[test]
    fn scientific_notation_floats() {
        let t = read_csv_str("t", "x\n1e3\n-2.5E-2\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.schema().field(0).dtype, DataType::Float64);
        assert_eq!(t.value(0, "x").unwrap(), Value::Float(1000.0));
    }
}
