//! The invariant rules. Each rule mechanizes one standing invariant
//! from ROADMAP.md; the README's "Static analysis" section carries the
//! invariant → rule-id mapping. Rules are token-sequence checks over
//! [`SourceFile`]s (plus a few cross-file checks over manifests, the
//! bench baseline, and the CI workflow) — deliberately heuristic where
//! full type information would be needed, with the waiver mechanism as
//! the escape hatch for sanctioned exceptions.

use crate::lexer::{Tok, Token};
use crate::source::{match_brace, SourceFile};

/// Crates whose analysis output feeds the determinism digest.
pub const DIGEST_CRATES: [&str; 5] = ["store", "stats", "cluster", "tree", "core"];

/// Analysis crates bound by the view discipline (R3). `store` is where
/// `Table` lives, so constructors there may consume tables.
pub const VIEW_CRATES: [&str; 4] = ["stats", "cluster", "tree", "core"];

/// Serving-path crates bound by panic hygiene (R4).
pub const PANIC_CRATES: [&str; 2] = ["net", "server"];

/// Every rule the linter enforces. The `stale-waiver` pseudo-rule
/// polices the waivers themselves and cannot be waived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: parallelism primitives only inside `crates/exec`; exactly one
    /// `available_parallelism` call site in the workspace.
    ExecParallelism,
    /// R2: no wall clock, no hash-order iteration in digest crates.
    DigestDeterminism,
    /// R3: analysis crates never take `Table` by value.
    ViewDiscipline,
    /// R4: no `.unwrap()` / `.expect(` / `panic!` on net/server
    /// non-test paths.
    PanicHygiene,
    /// R5: wire schema coherence — every `Command` variant in both
    /// `to_json` and `from_json`, unique `BlaeuError::kind` tags, one
    /// `WIRE_VERSION` declaration.
    WireSchema,
    /// R6: every manifest dependency is a path dep into `crates/` or
    /// `vendor/` (or a workspace inheritance of one).
    VendorDeps,
    /// R7: every `unsafe` is preceded by a `// SAFETY:` comment.
    SafetyComment,
    /// R8: every criterion group is present in the committed bench
    /// baseline and gated by some CI `CRITERION_REQUIRE_GROUPS` list.
    BenchGate,
    /// Waiver hygiene: unknown rule, missing reason, or a waiver that
    /// suppresses nothing.
    StaleWaiver,
}

impl Rule {
    /// Stable kebab-case id — what findings print and waivers name.
    pub fn id(self) -> &'static str {
        match self {
            Rule::ExecParallelism => "exec-parallelism",
            Rule::DigestDeterminism => "digest-determinism",
            Rule::ViewDiscipline => "view-discipline",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::WireSchema => "wire-schema",
            Rule::VendorDeps => "vendor-deps",
            Rule::SafetyComment => "safety-comment",
            Rule::BenchGate => "bench-gate",
            Rule::StaleWaiver => "stale-waiver",
        }
    }

    /// All rules, in report order.
    pub fn all() -> [Rule; 9] {
        [
            Rule::ExecParallelism,
            Rule::DigestDeterminism,
            Rule::ViewDiscipline,
            Rule::PanicHygiene,
            Rule::WireSchema,
            Rule::VendorDeps,
            Rule::SafetyComment,
            Rule::BenchGate,
            Rule::StaleWaiver,
        ]
    }

    /// Parses a rule id as written in a waiver. `stale-waiver` is not
    /// waivable and parses to `None` on purpose.
    pub fn waivable_from_id(id: &str) -> Option<Rule> {
        Rule::all()
            .into_iter()
            .filter(|r| *r != Rule::StaleWaiver)
            .find(|r| r.id() == id)
    }
}

/// One reported violation: `file:line rule-id message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-workspace findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

fn finding(file: &str, line: usize, rule: Rule, message: String) -> Finding {
    Finding {
        file: file.to_owned(),
        line,
        rule,
        message,
    }
}

/// True when `tokens[i..]` starts with the given identifier/punct
/// sequence, where each pattern entry is either an identifier name or a
/// single punctuation character.
fn seq_at(tokens: &[Token], i: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| {
        tokens.get(i + k).is_some_and(|t| {
            if want.len() == 1 && !want.chars().next().is_some_and(char::is_alphabetic) {
                t.is_punct(want.chars().next().unwrap_or(' '))
            } else {
                t.is_ident(want)
            }
        })
    })
}

// ---------------------------------------------------------------------
// R1 — executor discipline
// ---------------------------------------------------------------------

/// Per-file half of R1: thread primitives outside `crates/exec`. Test
/// code (integration tests, `#[cfg(test)]`) may orchestrate threads for
/// harness purposes; `available_parallelism` is returned for the
/// workspace-level exactly-one check and flagged here when outside exec
/// (test code included — the thread *budget* has one owner, full stop).
pub fn rule_exec_parallelism(file: &SourceFile, findings: &mut Vec<Finding>) -> Vec<usize> {
    let mut budget_sites = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if toks[i].is_ident("available_parallelism") {
            budget_sites.push(toks[i].line);
            if file.crate_name != "exec" {
                findings.push(finding(
                    &file.rel_path,
                    toks[i].line,
                    Rule::ExecParallelism,
                    "available_parallelism outside crates/exec — the thread budget has \
                     exactly one owner (blaeu-exec)"
                        .to_owned(),
                ));
            }
            continue;
        }
        if file.crate_name == "exec" {
            continue;
        }
        if seq_at(toks, i, &["thread", ":", ":", "spawn"])
            || seq_at(toks, i, &["thread", ":", ":", "scope"])
            || seq_at(toks, i, &["thread", ":", ":", "Builder"])
        {
            let line = toks[i].line;
            if file.in_test(line) {
                continue;
            }
            let what = toks[i + 3].ident().unwrap_or("spawn");
            findings.push(finding(
                &file.rel_path,
                line,
                Rule::ExecParallelism,
                format!(
                    "thread::{what} outside crates/exec — all parallelism goes through \
                     blaeu-exec (par_map / par_shards / JobPool)"
                ),
            ));
        }
    }
    budget_sites
}

/// Workspace half of R1: exactly one `available_parallelism` call site.
pub fn rule_exec_budget(sites: &[(String, usize)], findings: &mut Vec<Finding>) {
    match sites.len() {
        1 => {}
        0 => findings.push(finding(
            "crates/exec/src/lib.rs",
            0,
            Rule::ExecParallelism,
            "no available_parallelism call site found — blaeu-exec must own the \
             process thread budget in exactly one place"
                .to_owned(),
        )),
        n => {
            for (file, line) in sites {
                findings.push(finding(
                    file,
                    *line,
                    Rule::ExecParallelism,
                    format!(
                        "{n} available_parallelism call sites in the workspace — the \
                         thread budget must have exactly one"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// R2 — determinism discipline in digest crates
// ---------------------------------------------------------------------

/// Methods whose call on a hash collection visits entries in hash
/// order — the nondeterminism the digest gates exist to catch.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// R2: wall clock and hash-order iteration in digest-bearing crates.
/// Hash-typed names are recognized from `let` bindings and struct
/// fields whose type or initializer mentions `HashMap`/`HashSet` — a
/// heuristic, so `BTreeMap` (deterministic) never binds and a sorted
/// consumption of hash keys takes an explicit waiver stating why it is
/// order-safe.
pub fn rule_digest_determinism(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !DIGEST_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let line = toks[i].line;
        if file.in_test(line) {
            continue;
        }
        if seq_at(toks, i, &["Instant", ":", ":", "now"])
            || seq_at(toks, i, &["SystemTime", ":", ":", "now"])
        {
            let which = toks[i].ident().unwrap_or("clock");
            findings.push(finding(
                &file.rel_path,
                line,
                Rule::DigestDeterminism,
                format!(
                    "{which}::now in a digest-bearing crate — wall clock makes analysis \
                     output time-dependent; timing belongs in the server/bench tiers"
                ),
            ));
        }
    }

    let hash_names = hash_bound_names(toks);
    if hash_names.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if !hash_names.contains(&name.to_owned()) {
            continue;
        }
        if file.in_test(toks[i].line) {
            continue;
        }
        // Walk the method chain rooted at this identifier and flag the
        // first hash-order iteration hop (covers `m.keys()` as well as
        // `self.sessions.read().keys()`).
        if let Some((line, method)) = chain_iteration(toks, i) {
            findings.push(finding(
                &file.rel_path,
                line,
                Rule::DigestDeterminism,
                format!(
                    "hash-order iteration (.{method}()) over hash collection `{name}` in a \
                     digest-bearing crate — iteration order is nondeterministic; use a \
                     sorted structure or waive with the reason the order cannot leak"
                ),
            ));
        }
        // `for v in &name { … }` / `for v in name { … }`.
        if let Some(line) = for_loop_over(toks, i) {
            findings.push(finding(
                &file.rel_path,
                line,
                Rule::DigestDeterminism,
                format!(
                    "for-loop over hash collection `{name}` in a digest-bearing crate — \
                     iteration order is nondeterministic"
                ),
            ));
        }
    }
}

/// Names bound to `HashMap`/`HashSet` by a `let` (type annotation or
/// initializer) or declared as struct fields of such a type.
fn hash_bound_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    let is_hash = |t: &Token| t.is_ident("HashMap") || t.is_ident("HashSet");
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(Token::ident) {
                // Scan the statement (to the `;` at relative depth 0).
                let mut depth = 0isize;
                let mut k = j + 1;
                let mut saw_hash = false;
                while k < toks.len() {
                    match &toks[k].tok {
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                        Tok::Punct(';') if depth <= 0 => break,
                        _ => {
                            if is_hash(&toks[k]) {
                                saw_hash = true;
                            }
                        }
                    }
                    k += 1;
                }
                if saw_hash {
                    names.push(name.to_owned());
                }
            }
        } else if toks[i].is_ident("struct") && toks.get(i + 1).and_then(Token::ident).is_some() {
            // Fields: `name: …HashMap<…>…` up to the field's `,` / `}`.
            if let Some(open) = (i..toks.len().min(i + 40)).find(|&k| toks[k].is_punct('{')) {
                if let Some(close) = match_brace(toks, open) {
                    let mut k = open + 1;
                    while k < close {
                        if toks[k].ident().is_some()
                            && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                            && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                        {
                            let field = toks[k].ident().unwrap_or_default().to_owned();
                            let mut depth = 0isize;
                            let mut m = k + 2;
                            let mut saw_hash = false;
                            while m < close {
                                match &toks[m].tok {
                                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => {
                                        depth += 1
                                    }
                                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => {
                                        depth -= 1
                                    }
                                    Tok::Punct(',') if depth <= 0 => break,
                                    _ => {
                                        if is_hash(&toks[m]) {
                                            saw_hash = true;
                                        }
                                    }
                                }
                                m += 1;
                            }
                            if saw_hash {
                                names.push(field);
                            }
                            k = m;
                        }
                        k += 1;
                    }
                }
            }
        }
        i += 1;
    }
    names.sort();
    names.dedup();
    names
}

/// Walks a method chain starting at identifier index `i`; returns the
/// line and method name of the first hash-order iteration hop, if any.
fn chain_iteration(toks: &[Token], i: usize) -> Option<(usize, String)> {
    let mut j = i + 1;
    for _hop in 0..6 {
        if !toks.get(j).is_some_and(|t| t.is_punct('.')) {
            return None;
        }
        let method = toks.get(j + 1).and_then(Token::ident)?.to_owned();
        let mut k = j + 2;
        // Optional turbofish `::<…>`.
        if toks.get(k).is_some_and(|t| t.is_punct(':'))
            && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(k + 2).is_some_and(|t| t.is_punct('<'))
        {
            let mut angle = 0isize;
            k += 2;
            while k < toks.len() {
                if toks[k].is_punct('<') {
                    angle += 1;
                } else if toks[k].is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        if !toks.get(k).is_some_and(|t| t.is_punct('(')) {
            return None; // field access, not a call
        }
        if HASH_ITER_METHODS.contains(&method.as_str()) {
            return Some((toks[j + 1].line, method));
        }
        // Skip the argument list and continue down the chain.
        let mut paren = 0isize;
        while k < toks.len() {
            if toks[k].is_punct('(') {
                paren += 1;
            } else if toks[k].is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            k += 1;
        }
        j = k + 1;
    }
    None
}

/// Detects `for … in [&][mut] name {` where the loop expression is
/// exactly the bound identifier at index `i`.
fn for_loop_over(toks: &[Token], i: usize) -> Option<usize> {
    if !toks.get(i + 1).is_some_and(|t| t.is_punct('{')) {
        return None;
    }
    // Walk backwards over `&`, `mut` to the `in` keyword.
    let mut j = i;
    while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
        j -= 1;
    }
    (j > 0 && toks[j - 1].is_ident("in")).then(|| toks[i].line)
}

// ---------------------------------------------------------------------
// R3 — view discipline
// ---------------------------------------------------------------------

/// R3: analysis-crate `fn` signatures must not take `Table` by value
/// (`&Table`, `Arc<Table>`, and `&TableView` are all fine — the pattern
/// is a parameter whose type is exactly `Table`).
pub fn rule_view_discipline(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !VIEW_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            // Parameter list: the first `(…)` group after the fn name.
            if let Some(open) = (i + 1..toks.len().min(i + 60)).find(|&k| toks[k].is_punct('(')) {
                let mut depth = 0isize;
                let mut k = open;
                while k < toks.len() {
                    if toks[k].is_punct('(') {
                        depth += 1;
                    } else if toks[k].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if toks[k].is_punct(':')
                        && toks.get(k + 1).is_some_and(|t| t.is_ident("Table"))
                        && toks
                            .get(k + 2)
                            .is_some_and(|t| t.is_punct(',') || t.is_punct(')'))
                        && !file.in_test(toks[k].line)
                    {
                        findings.push(finding(
                            &file.rel_path,
                            toks[k + 1].line,
                            Rule::ViewDiscipline,
                            "fn parameter takes Table by value in an analysis crate — \
                             analysis code reads &TableView (or is generic over \
                             ColumnRead); materialize only for example rows"
                                .to_owned(),
                        ));
                    }
                    k += 1;
                }
                i = k;
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// R4 — panic hygiene on serving paths
// ---------------------------------------------------------------------

/// R4: `.unwrap()`, `.expect(` and `panic!` are forbidden in net/server
/// non-test code. A panic on the request path is a 422-after-the-fact
/// at best and a wedged worker at worst; return a typed `BlaeuError`
/// instead, or waive with the proof of infallibility.
pub fn rule_panic_hygiene(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !PANIC_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let line = toks[i].line;
        if file.in_test(line) {
            continue;
        }
        let hit = if seq_at(toks, i, &[".", "unwrap", "(", ")"]) {
            Some((toks[i + 1].line, ".unwrap()"))
        } else if seq_at(toks, i, &[".", "expect", "("]) {
            Some((toks[i + 1].line, ".expect(…)"))
        } else if toks[i].is_ident("panic") && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            Some((line, "panic!"))
        } else {
            None
        };
        if let Some((at, what)) = hit {
            findings.push(finding(
                &file.rel_path,
                at,
                Rule::PanicHygiene,
                format!(
                    "{what} on a serving-path crate ({}) — return a typed BlaeuError \
                     instead, or waive with the proof of infallibility",
                    file.crate_name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R7 — SAFETY comments
// ---------------------------------------------------------------------

/// How far above an `unsafe` its `// SAFETY:` comment may sit.
const SAFETY_LOOKBACK_LINES: usize = 8;

/// R7: every `unsafe` token needs a `// SAFETY:` comment on its line or
/// within the preceding few lines. Applies everywhere, tests included —
/// a proof obligation does not disappear in test code.
pub fn rule_safety_comment(file: &SourceFile, findings: &mut Vec<Finding>) {
    for t in &file.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(SAFETY_LOOKBACK_LINES);
        let covered = file
            .comments
            .iter()
            .any(|c| c.line >= lo && c.line <= t.line && c.text.contains("SAFETY:"));
        if !covered {
            findings.push(finding(
                &file.rel_path,
                t.line,
                Rule::SafetyComment,
                "unsafe without a preceding // SAFETY: comment stating the invariant \
                 that makes it sound"
                    .to_owned(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// R5 — wire-schema coherence (cross-file)
// ---------------------------------------------------------------------

/// R5 over the whole workspace: `Command` round-trip coverage, unique
/// error tags, a single `WIRE_VERSION` declaration.
pub fn rule_wire_schema(files: &[SourceFile], findings: &mut Vec<Finding>) {
    // (a) Command variants vs to_json / from_json. The *wire* Command
    // enum is the one sharing a file with the WIRE_VERSION declaration;
    // other enums named Command (e.g. the REPL's) are out of scope.
    for file in files {
        let declares_wire_version = file.tokens.iter().enumerate().any(|(i, t)| {
            t.is_ident("const")
                && file
                    .tokens
                    .get(i + 1)
                    .is_some_and(|n| n.is_ident("WIRE_VERSION"))
        });
        if !declares_wire_version {
            continue;
        }
        let Some((variants, enum_line)) = enum_variants(&file.tokens, "Command") else {
            continue;
        };
        let to_json = impl_fn_idents(&file.tokens, "Command", "to_json");
        let from_json = impl_fn_idents(&file.tokens, "Command", "from_json");
        match (&to_json, &from_json) {
            (None, _) | (_, None) => {
                let missing = if to_json.is_none() {
                    "to_json"
                } else {
                    "from_json"
                };
                findings.push(finding(
                    &file.rel_path,
                    enum_line,
                    Rule::WireSchema,
                    format!("enum Command has no {missing} in an `impl Command` block"),
                ));
            }
            (Some(ser), Some(de)) => {
                for (variant, line) in &variants {
                    if !ser.contains(variant) {
                        findings.push(finding(
                            &file.rel_path,
                            *line,
                            Rule::WireSchema,
                            format!("Command::{variant} is not covered by to_json"),
                        ));
                    }
                    if !de.contains(variant) {
                        findings.push(finding(
                            &file.rel_path,
                            *line,
                            Rule::WireSchema,
                            format!("Command::{variant} is not covered by from_json"),
                        ));
                    }
                }
            }
        }
    }

    // (b) BlaeuError::kind tags must be unique.
    for file in files {
        let Some(body) = impl_fn_body(&file.tokens, "BlaeuError", "kind") else {
            continue;
        };
        let mut seen: Vec<(&str, usize)> = Vec::new();
        for t in body {
            if let Tok::Str(tag) = &t.tok {
                if let Some(&(_, first)) = seen.iter().find(|(s, _)| s == tag) {
                    findings.push(finding(
                        &file.rel_path,
                        t.line,
                        Rule::WireSchema,
                        format!(
                            "BlaeuError::kind tag {tag:?} reused (first at line {first}) — \
                             wire error codes must map one-to-one onto variants"
                        ),
                    ));
                } else {
                    seen.push((tag, t.line));
                }
            }
        }
    }

    // (c) Exactly one WIRE_VERSION declaration in the workspace.
    let mut decls: Vec<(&str, usize)> = Vec::new();
    for file in files {
        for (i, t) in file.tokens.iter().enumerate() {
            if t.is_ident("const")
                && file
                    .tokens
                    .get(i + 1)
                    .is_some_and(|n| n.is_ident("WIRE_VERSION"))
            {
                decls.push((&file.rel_path, t.line));
            }
        }
    }
    if decls.len() > 1 {
        for (path, line) in &decls {
            findings.push(finding(
                path,
                *line,
                Rule::WireSchema,
                format!(
                    "{} WIRE_VERSION declarations in the workspace — the wire schema \
                     version has exactly one source of truth",
                    decls.len()
                ),
            ));
        }
    }
}

/// Finds `enum <name> { … }`; returns variant names with their lines
/// and the enum's line.
fn enum_variants(toks: &[Token], name: &str) -> Option<(Vec<(String, usize)>, usize)> {
    let at = (0..toks.len())
        .find(|&i| toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)))?;
    let open = (at..toks.len()).find(|&i| toks[i].is_punct('{'))?;
    let close = match_brace(toks, open)?;
    let mut variants = Vec::new();
    let mut depth = 0isize;
    let mut expecting = true; // after `{` or a top-level `,`
    for t in toks.iter().take(close).skip(open + 1) {
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(',') if depth == 0 => expecting = true,
            Tok::Punct('#') => {} // attribute marker; its `[…]` nests
            Tok::Ident(word) if depth == 0 && expecting => {
                if word.chars().next().is_some_and(char::is_uppercase) {
                    variants.push((word.clone(), t.line));
                }
                expecting = false;
            }
            _ => {}
        }
    }
    Some((variants, toks[at].line))
}

/// Identifier set of the body of `fn <fn_name>` inside any
/// `impl <type_name>` block.
fn impl_fn_idents(toks: &[Token], type_name: &str, fn_name: &str) -> Option<Vec<String>> {
    let body = impl_fn_body(toks, type_name, fn_name)?;
    let mut idents: Vec<String> = body
        .iter()
        .filter_map(|t| t.ident().map(str::to_owned))
        .collect();
    idents.sort();
    idents.dedup();
    Some(idents)
}

/// The token slice of `fn <fn_name>`'s body inside `impl <type_name>`.
fn impl_fn_body<'t>(toks: &'t [Token], type_name: &str, fn_name: &str) -> Option<&'t [Token]> {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("impl")
            && toks.get(i + 1).is_some_and(|t| t.is_ident(type_name))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            let open = i + 2;
            let close = match_brace(toks, open)?;
            let mut j = open + 1;
            while j < close {
                if toks[j].is_ident("fn") && toks.get(j + 1).is_some_and(|t| t.is_ident(fn_name)) {
                    let body_open = (j + 2..close).find(|&k| toks[k].is_punct('{'))?;
                    let body_close = match_brace(toks, body_open)?;
                    return Some(&toks[body_open..=body_close]);
                }
                // Skip nested fn bodies so an inner helper named like
                // the target cannot shadow the search order.
                j += 1;
            }
            i = close;
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// R6 — vendor discipline (manifests)
// ---------------------------------------------------------------------

/// A waiver parsed out of a TOML `#` comment (same grammar as Rust).
pub struct TomlCheck {
    /// Findings from this manifest.
    pub findings: Vec<Finding>,
    /// Waivers found in `#` comments.
    pub waivers: Vec<crate::source::Waiver>,
}

/// R6: every dependency in every manifest must resolve into `crates/`
/// or `vendor/` via a `path` key, or inherit such a dep with
/// `workspace = true`. Registry (`version`-only) and `git` deps are
/// violations — the build environment has no crates.io access, and a
/// dep that silently resolves on a developer box would break CI.
pub fn check_manifest(rel_path: &str, text: &str) -> TomlCheck {
    let mut findings = Vec::new();
    let mut waivers = Vec::new();
    let toml_dir = rel_path.rsplit_once('/').map_or("", |(d, _)| d);
    let mut section = String::new();
    // `[dependencies.foo]` subsection bookkeeping: (header line, name,
    // saw a path/workspace key, saw a git/version key).
    let mut pending_sub: Option<(usize, String, bool, bool)> = None;

    let flush_sub = |pending: &mut Option<(usize, String, bool, bool)>,
                     findings: &mut Vec<Finding>| {
        if let Some((line, name, ok, _)) = pending.take() {
            if !ok {
                findings.push(finding(
                    rel_path,
                    line,
                    Rule::VendorDeps,
                    format!(
                        "dependency `{name}` has no path into crates/ or vendor/ \
                             (and is not workspace-inherited)"
                    ),
                ));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let (code, comment) = split_toml_comment(raw);
        if let Some(text) = comment {
            if let Some((rule, has_reason)) = crate::source::parse_waiver_text(text) {
                let trailing = !code.trim().is_empty();
                waivers.push(crate::source::Waiver {
                    line: lineno,
                    rule,
                    has_reason,
                    target_line: if trailing { lineno } else { lineno + 1 },
                });
            }
        }
        let line = code.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_sub(&mut pending_sub, &mut findings);
            section = line.trim_matches(['[', ']']).trim().to_owned();
            if let Some(rest) = dep_section_child(&section) {
                pending_sub = Some((lineno, rest.to_owned(), false, false));
            }
            continue;
        }
        if let Some((_, _, saw_ok, _)) = &mut pending_sub {
            // Inside `[dependencies.foo]`: look for path/workspace keys.
            if let Some((key, value)) = line.split_once('=') {
                let key = key.trim();
                let value = value.trim();
                let inherits = key == "workspace" && value.starts_with("true");
                if inherits || (key == "path" && path_is_vendored(toml_dir, value)) {
                    *saw_ok = true;
                } else if key == "git" || key == "version" || key == "registry" {
                    findings.push(finding(
                        rel_path,
                        lineno,
                        Rule::VendorDeps,
                        format!("`{key}` dependency source — only path deps into crates/ or vendor/ are allowed"),
                    ));
                }
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // `name.workspace = true` inherits a workspace dep (checked at
        // its declaration site in the root manifest).
        if key.ends_with(".workspace") {
            continue;
        }
        if value.starts_with('{') {
            let inner = value.trim_matches(['{', '}']).trim();
            let mut ok = false;
            let mut bad_key: Option<&str> = None;
            for part in split_inline_table(inner) {
                let Some((k, v)) = part.split_once('=') else {
                    continue;
                };
                let (k, v) = (k.trim(), v.trim());
                match k {
                    "path" if path_is_vendored(toml_dir, v) => ok = true,
                    "path" => bad_key = Some("path (outside crates/ and vendor/)"),
                    "workspace" if v.starts_with("true") => ok = true,
                    "git" => bad_key = Some("git"),
                    "version" | "registry" if bad_key.is_none() => {
                        bad_key = Some("version/registry")
                    }
                    _ => {}
                }
            }
            if !ok {
                findings.push(finding(
                    rel_path,
                    lineno,
                    Rule::VendorDeps,
                    format!(
                        "dependency `{key}` uses a {} source — only path deps into \
                         crates/ or vendor/ are allowed",
                        bad_key.unwrap_or("non-path")
                    ),
                ));
            }
        } else {
            // Bare `name = "1.0"` — a registry dependency.
            findings.push(finding(
                rel_path,
                lineno,
                Rule::VendorDeps,
                format!(
                    "dependency `{key}` is a bare registry version — only path deps \
                     into crates/ or vendor/ are allowed (the container has no \
                     crates.io access)"
                ),
            ));
        }
    }
    flush_sub(&mut pending_sub, &mut findings);
    TomlCheck { findings, waivers }
}

/// True for `[dependencies]`-family section headers (including
/// `workspace.dependencies` and `target.'…'.dependencies`).
fn is_dep_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// For `[dependencies.foo]`-style headers, the dependency name.
fn dep_section_child(section: &str) -> Option<&str> {
    for family in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(rest) = section.strip_prefix(family) {
            return Some(rest);
        }
    }
    None
}

/// Splits a TOML line into code and an optional `#` comment, honoring
/// quoted strings.
fn split_toml_comment(line: &str) -> (&str, Option<&str>) {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return (&line[..i], Some(&line[i + 1..])),
            _ => {}
        }
    }
    (line, None)
}

/// Splits an inline-table body on commas outside quotes.
fn split_inline_table(inner: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    parts
}

/// Resolves a quoted relative `path` value against the manifest's
/// directory and decides whether it lands inside `crates/` or
/// `vendor/` (or is the workspace root itself, for the facade crate).
fn path_is_vendored(toml_dir: &str, quoted: &str) -> bool {
    let path = quoted.trim().trim_matches('"');
    let mut parts: Vec<&str> = toml_dir.split('/').filter(|s| !s.is_empty()).collect();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                if parts.pop().is_none() {
                    return false; // escapes the workspace
                }
            }
            other => parts.push(other),
        }
    }
    matches!(parts.first(), Some(&"crates") | Some(&"vendor"))
}

// ---------------------------------------------------------------------
// R8 — bench-gate coverage (cross-file)
// ---------------------------------------------------------------------

/// R8: every criterion group defined under `crates/bench/benches` must
/// have entries in `.github/bench-baseline.json` and be pinned by a
/// `CRITERION_REQUIRE_GROUPS` list in the CI workflow — otherwise its
/// regression gate silently does not exist. The inverse also holds:
/// a CI-required group with no defining bench is a typo that would fail
/// every run of its step.
pub fn rule_bench_gate(
    files: &[SourceFile],
    baseline_json: Option<&str>,
    ci_workflows: &[(String, String)],
    findings: &mut Vec<Finding>,
) {
    let mut groups: Vec<(String, String, usize)> = Vec::new(); // (group, file, line)
    for file in files {
        if !file.rel_path.contains("/benches/") {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let is_group_call = toks[i].is_ident("benchmark_group");
            // Top-level ids are registered on the `Criterion` handle,
            // conventionally named `c`; `group.bench_function` ids are
            // nested under an already-collected group.
            let is_toplevel_fn = toks[i].is_ident("bench_function")
                && i >= 2
                && toks[i - 1].is_punct('.')
                && toks[i - 2].is_ident("c");
            if !(is_group_call || is_toplevel_fn) {
                continue;
            }
            let Some(Tok::Str(id)) = toks
                .get(i + 1)
                .filter(|t| t.is_punct('('))
                .and_then(|_| toks.get(i + 2))
                .map(|t| &t.tok)
            else {
                continue;
            };
            let group = id.split('/').next().unwrap_or(id).to_owned();
            if !groups.iter().any(|(g, _, _)| *g == group) {
                groups.push((group, file.rel_path.clone(), toks[i].line));
            }
        }
    }

    let baseline_groups: Vec<String> = baseline_json
        .map(|text| {
            let mut gs: Vec<String> = json_object_keys(text)
                .iter()
                .map(|k| k.split('/').next().unwrap_or(k).to_owned())
                .collect();
            gs.sort();
            gs.dedup();
            gs
        })
        .unwrap_or_default();

    // (group, workflow file, line) for every REQUIRE_GROUPS entry.
    let mut required: Vec<(String, String, usize)> = Vec::new();
    for (wf_path, wf_text) in ci_workflows {
        for (idx, line) in wf_text.lines().enumerate() {
            let Some(at) = line.find("CRITERION_REQUIRE_GROUPS") else {
                continue;
            };
            let Some(rest) = line[at..].split_once(':').map(|(_, r)| r) else {
                continue;
            };
            let spec = rest.trim().trim_matches(['"', '\'']);
            for entry in spec.split([',', ';']) {
                let entry = entry.trim();
                if !entry.is_empty() {
                    required.push((entry.to_owned(), wf_path.clone(), idx + 1));
                }
            }
        }
    }

    for (group, file, line) in &groups {
        if baseline_json.is_some() && !baseline_groups.contains(group) {
            findings.push(finding(
                file,
                *line,
                Rule::BenchGate,
                format!(
                    "criterion group `{group}` has no entries in \
                     .github/bench-baseline.json — its regression gate does not exist"
                ),
            ));
        }
        if !ci_workflows.is_empty() && !required.iter().any(|(g, _, _)| g == group) {
            findings.push(finding(
                file,
                *line,
                Rule::BenchGate,
                format!(
                    "criterion group `{group}` is in no CI CRITERION_REQUIRE_GROUPS \
                     list — a rename or deletion would silently skip its gate"
                ),
            ));
        }
    }
    for (group, wf_path, line) in &required {
        if !groups.iter().any(|(g, _, _)| g == group) {
            findings.push(finding(
                wf_path,
                *line,
                Rule::BenchGate,
                format!(
                    "CI requires criterion group `{group}` but no bench under \
                     crates/bench/benches defines it"
                ),
            ));
        }
    }
}

/// Top-level keys of a JSON object, by a tiny depth-tracking scan.
fn json_object_keys(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut keys = Vec::new();
    let mut depth = 0isize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b'"' => {
                let start = i + 1;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                let end = i;
                // A key is a string at depth 1 followed by `:`.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\n') {
                    j += 1;
                }
                if depth == 1 && bytes.get(j) == Some(&b':') {
                    if let Ok(key) = std::str::from_utf8(&bytes[start..end]) {
                        keys.push(key.to_owned());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    keys
}
