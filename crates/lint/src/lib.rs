//! blaeu-lint: the workspace invariant linter.
//!
//! Mechanizes the ROADMAP's standing invariants as a zero-dependency
//! static-analysis pass: a lightweight Rust tokenizer ([`lexer`]),
//! per-file context extraction ([`source`] — test regions, waivers),
//! nine rules ([`rules`]), and a workspace runner ([`workspace`]).
//!
//! The linter depends on nothing but `std` — it is the tool that
//! polices the dependency graph, so it cannot sit on top of it.

pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use rules::{Finding, Rule};
pub use workspace::{lint_root, LintReport};
