//! A lightweight Rust tokenizer — just enough lexical structure for
//! invariant checking: identifiers, punctuation, literals, and comments
//! with line numbers. No `syn`, no grammar; rules match token
//! sequences, so text inside strings and comments can never produce a
//! false hit (`"thread::spawn"` in a doc string is a literal, not a
//! call).

/// One lexical token. Keywords are ordinary identifiers — rules match
/// on text, not on grammar classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident(String),
    /// A single punctuation character. Multi-character operators arrive
    /// as consecutive tokens (`::` is two `:` tokens).
    Punct(char),
    /// String literal (normal, raw, or byte) with its *uncooked* body —
    /// escape sequences are preserved verbatim, which is fine for the
    /// simple names (bench ids, error tags) the rules compare.
    Str(String),
    /// Character literal, e.g. `'a'` or `'\n'`.
    Char,
    /// Numeric literal (any base, any suffix).
    Num,
    /// Lifetime or loop label, e.g. `'a`.
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    /// The identifier text, when this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// True when this token is exactly the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is exactly the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// One `//`-style comment (line, doc, or inner-doc) with its text after
/// the slashes, the 1-based line it sits on, and whether anything other
/// than whitespace precedes it on that line (a *trailing* comment
/// annotates its own line; a *standalone* one annotates the next).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line.
    pub line: usize,
    /// Comment text with the leading `//`, `///` or `//!` stripped.
    pub text: String,
    /// True when code precedes the comment on the same line.
    pub trailing: bool,
    /// True for doc comments (`///`, `//!`). Waivers live only in plain
    /// `//` comments, so documentation *about* the waiver grammar can
    /// never register as a waiver itself.
    pub doc: bool,
}

/// The output of [`lex`]: tokens and comments, each with line numbers.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All `//`-style comments in source order. Block comments are
    /// skipped entirely (the waiver and SAFETY grammars are line-comment
    /// based, matching how the workspace writes them).
    pub comments: Vec<Comment>,
}

/// Tokenizes `source`. The lexer is total: any byte sequence produces
/// *some* token stream (unterminated literals run to end of input), so
/// the linter never aborts on a file it half-understands.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    // Tracks whether any non-whitespace byte has appeared on the
    // current line before position `i` — classifies trailing comments.
    let mut code_on_line = false;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                code_on_line = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let raw = &source[start..i];
                let slashes = raw.bytes().take_while(|&b| b == b'/').count();
                let text = &raw[slashes..];
                let inner_doc = text.starts_with('!');
                let text = text.strip_prefix('!').unwrap_or(text);
                out.comments.push(Comment {
                    line,
                    text: text.to_owned(),
                    trailing: code_on_line,
                    doc: slashes >= 3 || inner_doc,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, skipped wholesale.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        code_on_line = false;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 1;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 1;
                    }
                    i += 1;
                }
            }
            b'"' => {
                let (body, consumed, newlines) = scan_string(&source[i..], 0);
                out.tokens.push(Token {
                    tok: Tok::Str(body),
                    line,
                });
                line += newlines;
                code_on_line = true;
                i += consumed;
            }
            b'\'' => {
                // Lifetime/label vs char literal: `'a` followed by
                // anything but a closing quote is a lifetime.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                let is_lifetime = next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
                    && after != Some(b'\'');
                if is_lifetime {
                    i += 2;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    i += 1;
                    // Consume to the closing quote, honoring escapes.
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => break, // unterminated; bail at EOL
                            _ => i += 1,
                        }
                    }
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                }
                code_on_line = true;
            }
            b'0'..=b'9' => {
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        // Exponent sign: `1e-3`, `2.5E+7`.
                        if (c == b'e' || c == b'E')
                            && matches!(bytes.get(i + 1), Some(b'+') | Some(b'-'))
                            && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        // `1.5` continues the number; `0..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
                code_on_line = true;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                // String-literal prefixes: r"", r#""#, b"", br#""#.
                let hashes_then_quote = |from: usize| -> Option<usize> {
                    let mut n = 0usize;
                    while bytes.get(from + n) == Some(&b'#') {
                        n += 1;
                    }
                    (bytes.get(from + n) == Some(&b'"')).then_some(n)
                };
                let raw_prefix = matches!(word, "r" | "br");
                let plain_prefix = matches!(word, "b");
                if (raw_prefix || plain_prefix) && hashes_then_quote(i).is_some() {
                    let hashes = if raw_prefix {
                        hashes_then_quote(i).unwrap_or(0)
                    } else {
                        0
                    };
                    let (body, consumed, newlines) = if raw_prefix {
                        scan_raw_string(&source[i..], hashes)
                    } else {
                        scan_string(&source[i..], 0)
                    };
                    out.tokens.push(Token {
                        tok: Tok::Str(body),
                        line,
                    });
                    line += newlines;
                    i += consumed;
                } else if word == "r" && bytes.get(i) == Some(&b'#') {
                    // Raw identifier `r#ident`.
                    i += 1;
                    let rstart = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Ident(source[rstart..i].to_owned()),
                        line,
                    });
                } else {
                    out.tokens.push(Token {
                        tok: Tok::Ident(word.to_owned()),
                        line,
                    });
                }
                code_on_line = true;
            }
            other => {
                out.tokens.push(Token {
                    tok: Tok::Punct(other as char),
                    line,
                });
                code_on_line = true;
                i += 1;
            }
        }
    }
    out
}

/// Scans a normal (escaped) string starting at a `"`; returns the body,
/// bytes consumed, and newlines crossed.
fn scan_string(rest: &str, _hashes: usize) -> (String, usize, usize) {
    let bytes = rest.as_bytes();
    debug_assert_eq!(bytes.first(), Some(&b'"'));
    let mut i = 1usize;
    let mut newlines = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                return (rest[1..i].to_owned(), i + 1, newlines);
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (rest[1..].to_owned(), bytes.len(), newlines)
}

/// Scans a raw string starting at `#...#"` with `hashes` hash marks;
/// returns the body, bytes consumed, and newlines crossed.
fn scan_raw_string(rest: &str, hashes: usize) -> (String, usize, usize) {
    let bytes = rest.as_bytes();
    let open = hashes + 1; // hashes then the quote
    let mut i = open;
    let mut newlines = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut n = 0usize;
            while n < hashes && bytes.get(i + 1 + n) == Some(&b'#') {
                n += 1;
            }
            if n == hashes {
                return (rest[open..i].to_owned(), i + 1 + hashes, newlines);
            }
        }
        if bytes[i] == b'\n' {
            newlines += 1;
        }
        i += 1;
    }
    (rest[open..].to_owned(), bytes.len(), newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r#"
// thread::spawn in a comment
let x = "thread::spawn in a string";
/* block with thread::spawn */
let y = call();
"#;
        let words = idents(src);
        assert!(!words.contains(&"spawn".to_owned()), "{words:?}");
        assert!(words.contains(&"call".to_owned()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("thread::spawn"));
    }

    #[test]
    fn raw_strings_byte_strings_chars_lifetimes() {
        let src = r##"let a = r#"spawn "quoted""#; let b = b"bytes"; let c = 'x'; fn f<'a>(v: &'a str) {} let d = '\n';"##;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            strs,
            vec!["spawn \"quoted\"".to_owned(), "bytes".to_owned()]
        );
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(chars, 2);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let src = "for i in 0..10 { let f = 1.5e-3; let h = 0xff_u32; }";
        let lexed = lex(src);
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the `..` survives as two dots");
        let nums = lexed.tokens.iter().filter(|t| t.tok == Tok::Num).count();
        assert_eq!(nums, 4);
    }

    #[test]
    fn trailing_vs_standalone_comments() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;\n";
        let lexed = lex(src);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let src = "let s = \"one\ntwo\";\nlet after = 3;";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("after token");
        assert_eq!(after.line, 3);
    }
}
