//! `invariant_check` — run the workspace invariant linter.
//!
//! Usage: `invariant_check [--json] [--list-rules] [--root PATH]`
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use blaeu_lint::{lint_root, Rule};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for rule in Rule::all() {
                    println!("{}", rule.id());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "invariant_check [--json] [--list-rules] [--root PATH]\n\n\
                     Lints the workspace against the ROADMAP's standing invariants.\n\
                     Findings print as `file:line rule-id message`; waive a single\n\
                     line with `// lint: allow(rule-id) — reason` (a waiver that\n\
                     suppresses nothing is itself an error)."
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    match lint_root(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
                eprintln!(
                    "invariant_check: {} finding(s) across {} files, {} manifests ({} waiver(s) honored)",
                    report.findings.len(),
                    report.files_scanned,
                    report.manifests_checked,
                    report.waivers_used
                );
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("invariant_check: {err}");
            ExitCode::from(2)
        }
    }
}
