//! Per-file analysis context: the token stream plus derived facts every
//! rule needs — which lines are test code, and which lines carry lint
//! waivers.

use crate::lexer::{lex, Comment, Token};

/// Waiver comment grammar: `lint: allow(<rule-id>) — <reason>` inside a
/// `//` comment (or a `#` comment in TOML). A standalone waiver
/// suppresses findings on the next code line; a trailing waiver
/// suppresses its own line. A waiver must carry a reason, must name a
/// known rule, and must actually suppress something — anything else is
/// itself a finding (`stale-waiver`), so waivers cannot rot in place.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the waiver comment sits on (1-based).
    pub line: usize,
    /// The rule id inside `allow(...)`, verbatim.
    pub rule: String,
    /// True when any text follows the `allow(...)` clause.
    pub has_reason: bool,
    /// The line whose findings this waiver suppresses.
    pub target_line: usize,
}

/// One parsed source file with everything the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate this file belongs to (`blaeu-<name>` directory stem for
    /// `crates/<name>/…`, `"blaeu"` for the root facade's `src/`,
    /// `tests/` and `examples/`).
    pub crate_name: String,
    /// Token stream (comments separated out).
    pub tokens: Vec<Token>,
    /// All `//` comments.
    pub comments: Vec<Comment>,
    /// Line ranges (inclusive) that are test code: bodies introduced by
    /// `#[cfg(test)]` or `#[test]` attributes. Whole-file test context
    /// (integration tests, benches) is the `file_is_test` flag instead.
    pub test_ranges: Vec<(usize, usize)>,
    /// True when the whole file is test/bench scaffolding by location:
    /// under a `tests/` or `benches/` directory.
    pub file_is_test: bool,
    /// Parsed waiver comments.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Lexes and analyzes one Rust file.
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let test_ranges = find_test_ranges(&lexed.tokens);
        let file_is_test = rel_path.starts_with("tests/")
            || rel_path.contains("/tests/")
            || rel_path.starts_with("benches/")
            || rel_path.contains("/benches/");
        let waivers = find_waivers(&lexed.comments, &lexed.tokens);
        SourceFile {
            rel_path: rel_path.to_owned(),
            crate_name: crate_of(rel_path),
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_ranges,
            file_is_test,
            waivers,
        }
    }

    /// True when `line` is inside test code — either a `#[cfg(test)]` /
    /// `#[test]` region or a whole-file test location.
    pub fn in_test(&self, line: usize) -> bool {
        self.file_is_test
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// Maps a workspace-relative path onto its owning crate name.
fn crate_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_owned();
        }
    }
    "blaeu".to_owned()
}

/// Finds `{ … }` regions introduced by test attributes. The scan is
/// token-shaped, not grammatical: for each `#[…]` attribute whose
/// bracket group contains the identifier `test` *not* negated by
/// `not(…)`, the next top-level `{` opens a test region that runs to
/// its matching `}`. A semicolon before any `{` (e.g. `mod tests;`)
/// cancels the pending region.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Bracket-match the attribute.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[j].is_ident("test") {
                    saw_test = true;
                } else if tokens[j].is_ident("not") {
                    saw_not = true;
                }
                j += 1;
            }
            if saw_test && !saw_not {
                // Find the body this attribute decorates: the first `{`
                // before a `;` at nesting depth zero.
                let mut k = j + 1;
                let mut body = None;
                let mut paren = 0isize;
                while k < tokens.len() {
                    match &tokens[k].tok {
                        crate::lexer::Tok::Punct('(') | crate::lexer::Tok::Punct('[') => paren += 1,
                        crate::lexer::Tok::Punct(')') | crate::lexer::Tok::Punct(']') => paren -= 1,
                        crate::lexer::Tok::Punct('{') if paren == 0 => {
                            body = Some(k);
                            break;
                        }
                        crate::lexer::Tok::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if let Some(open) = body {
                    if let Some(close) = match_brace(tokens, open) {
                        ranges.push((tokens[open].line, tokens[close].line));
                        // Continue scanning *inside* the region too so
                        // overlapping attributes still parse; harmless.
                    }
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Index of the `}` matching the `{` at `open`.
pub fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Extracts waivers from comments. See [`Waiver`] for the grammar.
fn find_waivers(comments: &[Comment], tokens: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for comment in comments {
        if comment.doc {
            continue;
        }
        let Some(waiver) = parse_waiver_text(&comment.text) else {
            continue;
        };
        let target_line = if comment.trailing {
            comment.line
        } else {
            // First code token strictly below the comment.
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.line)
                .unwrap_or(0)
        };
        out.push(Waiver {
            line: comment.line,
            rule: waiver.0,
            has_reason: waiver.1,
            target_line,
        });
    }
    out
}

/// Parses `lint: allow(<rule>) …reason` out of comment text. Returns
/// `(rule, has_reason)`.
pub fn parse_waiver_text(text: &str) -> Option<(String, bool)> {
    let at = text.find("lint:")?;
    let rest = text[at + "lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_owned();
    let tail = rest[close + 1..]
        .trim_start_matches([' ', '\t', '-', '—', ':', '–'])
        .trim();
    Some((rule, !tail.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_are_found_and_not_test_is_ignored() {
        let src = r#"
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn case() {}
}
#[cfg(not(test))]
fn also_live() {}
"#;
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(file.in_test(5), "inside mod tests");
        assert!(file.in_test(7), "inside #[test] fn");
        assert!(!file.in_test(2), "top-level fn is live");
        assert!(!file.in_test(10), "cfg(not(test)) fn is live");
    }

    #[test]
    fn mod_tests_without_body_is_not_a_region() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!file.in_test(3));
    }

    #[test]
    fn file_location_marks_whole_file_tests() {
        let file = SourceFile::parse("tests/end_to_end.rs", "fn anything() {}");
        assert!(file.in_test(1));
        let bench = SourceFile::parse("crates/bench/benches/bench_x.rs", "fn b() {}");
        assert!(bench.in_test(1));
    }

    #[test]
    fn waiver_targets_and_reasons() {
        let src = "fn f() {\n    // lint: allow(panic-hygiene) — infallible by construction\n    g();\n    h(); // lint: allow(exec-parallelism) harness thread\n    i();\n}\n// lint: allow(bench-gate)\nfn j() {}\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(file.waivers.len(), 3);
        assert_eq!(file.waivers[0].rule, "panic-hygiene");
        assert_eq!(
            file.waivers[0].target_line, 3,
            "standalone waives next line"
        );
        assert!(file.waivers[0].has_reason);
        assert_eq!(file.waivers[1].target_line, 4, "trailing waives own line");
        assert!(file.waivers[1].has_reason);
        assert!(!file.waivers[2].has_reason, "bare waiver has no reason");
    }

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/net/src/http.rs"), "net");
        assert_eq!(crate_of("src/repl.rs"), "blaeu");
        assert_eq!(crate_of("tests/end_to_end.rs"), "blaeu");
    }
}
