//! Workspace walking, rule dispatch, waiver application, and the
//! report format. This is the linter's top level: point [`lint_root`]
//! at a workspace root and get back the sorted finding list.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::{self, Finding, Rule};
use crate::source::{SourceFile, Waiver};

/// The result of linting one workspace root.
pub struct LintReport {
    /// All surviving findings, sorted by (file, line, rule, message).
    pub findings: Vec<Finding>,
    /// Number of Rust files scanned.
    pub files_scanned: usize,
    /// Number of manifests checked.
    pub manifests_checked: usize,
    /// Number of waivers honored (suppressed at least one finding).
    pub waivers_used: usize,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// One `file:line rule-id message` line per finding.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{} {} {}\n",
                f.file,
                f.line,
                f.rule.id(),
                f.message
            ));
        }
        out
    }

    /// Machine-readable report for the CI job.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"ok\": {},\n", self.ok()));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"manifests_checked\": {},\n",
            self.manifests_checked
        ));
        out.push_str(&format!("  \"waivers_used\": {},\n", self.waivers_used));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.rule.id(),
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints the workspace rooted at `root`. Errors only on I/O problems
/// (unreadable root); individual unreadable files are skipped.
pub fn lint_root(root: &Path) -> Result<LintReport, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }

    // ---- Rust sources under the four walk roots. -------------------
    let mut rs_paths: Vec<PathBuf> = Vec::new();
    for walk_root in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(walk_root), &mut rs_paths);
    }
    rs_paths.sort();
    let mut files: Vec<SourceFile> = Vec::new();
    for path in &rs_paths {
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        files.push(SourceFile::parse(&rel_of(root, path), &text));
    }

    // ---- Per-file rules. -------------------------------------------
    let mut findings: Vec<Finding> = Vec::new();
    let mut budget_sites: Vec<(String, usize)> = Vec::new();
    for file in &files {
        for line in rules::rule_exec_parallelism(file, &mut findings) {
            budget_sites.push((file.rel_path.clone(), line));
        }
        rules::rule_digest_determinism(file, &mut findings);
        rules::rule_view_discipline(file, &mut findings);
        rules::rule_panic_hygiene(file, &mut findings);
        rules::rule_safety_comment(file, &mut findings);
    }

    // ---- Workspace-level rules. ------------------------------------
    // The exactly-one-budget-owner check only makes sense when the
    // workspace has an exec crate to own it (fixture trees may not).
    if files.iter().any(|f| f.crate_name == "exec") {
        rules::rule_exec_budget(&budget_sites, &mut findings);
    }
    rules::rule_wire_schema(&files, &mut findings);

    let mut waivers: Vec<(String, Waiver, bool)> = Vec::new(); // (file, waiver, used)
    for file in &files {
        for w in &file.waivers {
            waivers.push((file.rel_path.clone(), w.clone(), false));
        }
    }

    let mut manifests_checked = 0usize;
    for manifest in manifest_paths(root) {
        let Ok(text) = fs::read_to_string(&manifest) else {
            continue;
        };
        manifests_checked += 1;
        let rel = rel_of(root, &manifest);
        let check = rules::check_manifest(&rel, &text);
        findings.extend(check.findings);
        for w in check.waivers {
            waivers.push((rel.clone(), w, false));
        }
    }

    let baseline = fs::read_to_string(root.join(".github/bench-baseline.json")).ok();
    let mut ci_workflows: Vec<(String, String)> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join(".github/workflows")) {
        let mut wf_paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension()
                    .and_then(|e| e.to_str())
                    .is_some_and(|e| e == "yml" || e == "yaml")
            })
            .collect();
        wf_paths.sort();
        for p in wf_paths {
            if let Ok(text) = fs::read_to_string(&p) {
                ci_workflows.push((rel_of(root, &p), text));
            }
        }
    }
    rules::rule_bench_gate(&files, baseline.as_deref(), &ci_workflows, &mut findings);

    // ---- Waiver application. ---------------------------------------
    // A waiver only suppresses when it names a known rule AND carries a
    // reason; defective waivers surface as stale-waiver findings below,
    // alongside the finding they failed to suppress.
    let mut kept: Vec<Finding> = Vec::new();
    for f in findings {
        let suppressed = waivers.iter_mut().any(|(file, w, used)| {
            let applies = *file == f.file
                && w.target_line == f.line
                && w.has_reason
                && Rule::waivable_from_id(&w.rule) == Some(f.rule);
            if applies {
                *used = true;
            }
            applies
        });
        if !suppressed {
            kept.push(f);
        }
    }
    let mut findings = kept;

    // ---- Waiver hygiene (stale-waiver). ----------------------------
    let mut waivers_used = 0usize;
    for (file, w, used) in &waivers {
        if *used {
            waivers_used += 1;
            continue;
        }
        let message = if Rule::waivable_from_id(&w.rule).is_none() {
            format!(
                "waiver names unknown or unwaivable rule `{}` — known rules: {}",
                w.rule,
                Rule::all()
                    .into_iter()
                    .filter(|r| *r != Rule::StaleWaiver)
                    .map(Rule::id)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        } else if !w.has_reason {
            format!(
                "waiver for `{}` has no reason — write down why the exception is sound",
                w.rule
            )
        } else {
            format!(
                "stale waiver for `{}` — it suppresses nothing on line {}; remove it",
                w.rule, w.target_line
            )
        };
        findings.push(Finding {
            file: file.clone(),
            line: w.line,
            rule: Rule::StaleWaiver,
            message,
        });
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.id(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule.id(),
            b.message.as_str(),
        ))
    });

    Ok(LintReport {
        findings,
        files_scanned: files.len(),
        manifests_checked,
        waivers_used,
    })
}

/// Recursively collects `.rs` files, skipping build output and the
/// linter's own rule fixtures (they are deliberately full of
/// violations and are linted individually by the fixture tests).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_owned();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && dir.file_name().and_then(|n| n.to_str()) == Some("tests") {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// All manifests the vendor rule inspects: the root, every
/// `crates/*/Cargo.toml`, every `vendor/*/Cargo.toml`.
fn manifest_paths(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    for parent in ["crates", "vendor"] {
        let Ok(entries) = fs::read_dir(root.join(parent)) else {
            continue;
        };
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                out.push(manifest);
            }
        }
    }
    out
}

/// Workspace-relative path with `/` separators.
fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_text_format_is_file_line_rule_message() {
        let report = LintReport {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: Rule::PanicHygiene,
                message: "boom".into(),
            }],
            files_scanned: 1,
            manifests_checked: 0,
            waivers_used: 0,
        };
        assert_eq!(
            report.to_text(),
            "crates/x/src/lib.rs:7 panic-hygiene boom\n"
        );
        assert!(report.to_json().contains("\"rule\": \"panic-hygiene\""));
        assert!(!report.ok());
    }
}
