//! Proves every rule live: each bad fixture must trip exactly its
//! rule, the good fixture must pass clean, defective waivers must be
//! findings, and — the point of the whole exercise — the real
//! workspace must lint clean.

use std::path::PathBuf;

use blaeu_lint::{lint_root, LintReport, Rule};

fn fixture(name: &str) -> LintReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    lint_root(&root).expect("fixture root lints")
}

fn rules_hit(report: &LintReport) -> Vec<Rule> {
    let mut rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn r1_thread_primitives_and_budget_sites_trip() {
    let report = fixture("r1_bad");
    assert_eq!(rules_hit(&report), vec![Rule::ExecParallelism]);
    let spawn = report
        .findings
        .iter()
        .find(|f| f.file == "crates/app/src/lib.rs")
        .expect("spawn outside exec is flagged");
    assert_eq!(spawn.line, 3);
    assert!(spawn.message.contains("thread::spawn"));
    let budget: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file == "crates/exec/src/lib.rs")
        .collect();
    assert_eq!(budget.len(), 2, "both duplicate budget sites are flagged");
}

#[test]
fn r2_wall_clock_and_hash_iteration_trip() {
    let report = fixture("r2_bad");
    assert_eq!(rules_hit(&report), vec![Rule::DigestDeterminism]);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("Instant::now")),
        "wall clock flagged: {}",
        report.to_text()
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains(".values()")),
        "hash iteration flagged: {}",
        report.to_text()
    );
}

#[test]
fn r3_table_by_value_trips() {
    let report = fixture("r3_bad");
    assert_eq!(rules_hit(&report), vec![Rule::ViewDiscipline]);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].line, 4);
}

#[test]
fn r4_unwrap_expect_panic_trip() {
    let report = fixture("r4_bad");
    assert_eq!(rules_hit(&report), vec![Rule::PanicHygiene]);
    assert_eq!(report.findings.len(), 3, "{}", report.to_text());
}

#[test]
fn r5_uncovered_variant_trips() {
    let report = fixture("r5_bad");
    assert_eq!(rules_hit(&report), vec![Rule::WireSchema]);
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("Command::Zoom"));
    assert!(report.findings[0].message.contains("from_json"));
}

#[test]
fn r6_registry_and_git_deps_trip() {
    let report = fixture("r6_bad");
    assert_eq!(rules_hit(&report), vec![Rule::VendorDeps]);
    assert_eq!(report.findings.len(), 2, "{}", report.to_text());
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`serde`")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`rayon`")));
}

#[test]
fn r7_unsafe_without_safety_comment_trips() {
    let report = fixture("r7_bad");
    assert_eq!(rules_hit(&report), vec![Rule::SafetyComment]);
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn r8_ungated_bench_groups_trip() {
    let report = fixture("r8_bad");
    assert_eq!(rules_hit(&report), vec![Rule::BenchGate]);
    // mygroup + solo each miss baseline and CI list; othergroup is
    // required by CI but defined nowhere.
    assert_eq!(report.findings.len(), 5, "{}", report.to_text());
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("ci.yml") && f.message.contains("`othergroup`")));
}

#[test]
fn defective_waivers_are_findings() {
    let report = fixture("stale_waiver");
    assert_eq!(rules_hit(&report), vec![Rule::StaleWaiver]);
    assert_eq!(report.findings.len(), 3, "{}", report.to_text());
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("suppresses nothing")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("made-up-rule")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("no reason")));
}

#[test]
fn good_fixture_is_clean_and_honors_its_waiver() {
    let report = fixture("good");
    assert!(report.ok(), "expected clean, got:\n{}", report.to_text());
    assert_eq!(
        report.waivers_used, 1,
        "the sorted hash-drain waiver is live"
    );
}

#[test]
fn report_formats_are_stable() {
    let report = fixture("r3_bad");
    assert_eq!(
        report.to_text(),
        "crates/cluster/src/lib.rs:4 view-discipline fn parameter takes Table by value \
         in an analysis crate — analysis code reads &TableView (or is generic over \
         ColumnRead); materialize only for example rows\n"
    );
    let json = report.to_json();
    assert!(json.contains("\"ok\": false"));
    assert!(json.contains("\"rule\": \"view-discipline\""));
}

/// The acceptance criterion: the real workspace lints clean. Any new
/// violation anywhere in the tree fails this test (and the CI
/// `invariants` job) until fixed or waived with a reason.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = lint_root(&root).expect("workspace lints");
    assert!(
        report.ok(),
        "workspace has invariant violations:\n{}",
        report.to_text()
    );
    assert!(report.files_scanned > 100, "walker found the tree");
}
