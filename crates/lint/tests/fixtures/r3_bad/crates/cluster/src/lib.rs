//! Fixture: an analysis fn taking Table by value must trip R3.
pub struct Table;

pub fn analyze(table: Table, k: usize) -> usize {
    let _ = table;
    k
}
