//! Fixture: unwrap/expect/panic on a serving path must trip R4.
pub fn handle(body: Option<&str>) -> usize {
    let text = body.unwrap();
    if text.is_empty() {
        panic!("empty body");
    }
    text.parse::<usize>().expect("numeric body")
}
