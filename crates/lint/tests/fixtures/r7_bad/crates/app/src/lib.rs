//! Fixture: an unsafe block without a SAFETY comment must trip R7.
pub fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}
