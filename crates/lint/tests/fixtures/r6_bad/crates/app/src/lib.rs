//! Fixture body for the manifest rule.
