//! Analysis fns borrow tables.
pub mod command;

pub struct Table;

pub fn analyze(table: &Table, k: usize) -> usize {
    let _ = table;
    k
}
