//! Digest crate: BTreeMap iteration is deterministic and fine; a
//! justified waiver covers the one sorted hash-drain.
use std::collections::{BTreeMap, HashSet};

pub fn sum(m: &BTreeMap<u32, u32>) -> u32 {
    m.values().sum()
}

pub fn sorted_ids(raw: &[u32]) -> Vec<u32> {
    let set: HashSet<u32> = raw.iter().copied().collect();
    // lint: allow(digest-determinism) — hash order cannot leak: sorted on the next line
    let mut ids: Vec<u32> = set.into_iter().collect();
    ids.sort_unstable();
    ids
}
