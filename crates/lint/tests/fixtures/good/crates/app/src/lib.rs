//! unsafe carries its proof.
pub fn first(bytes: &[u8]) -> u8 {
    debug_assert!(!bytes.is_empty());
    // SAFETY: the caller guarantees `bytes` is non-empty, so index 0
    // is in bounds; checked by the debug_assert above in debug builds.
    unsafe { *bytes.as_ptr() }
}
