//! The exec crate owns the thread budget and may spawn.
pub fn budget() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub fn run() {
    std::thread::spawn(|| {}).join().ok();
}
