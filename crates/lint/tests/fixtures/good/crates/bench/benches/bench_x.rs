//! Bench group covered by baseline and CI gate.
pub fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mygroup/fast");
    let _ = &mut group;
}
