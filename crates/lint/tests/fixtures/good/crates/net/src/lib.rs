//! Serving crate: fallible paths return Option; unwrap only in tests.
pub fn handle(body: Option<&str>) -> Option<usize> {
    body?.parse().ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::handle(Some("3")).unwrap(), 3);
    }
}
