//! Fixture: nondeterminism in a digest-bearing crate must trip R2.
use std::collections::HashMap;
use std::time::Instant;

pub fn timed() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

pub fn sum(m: &HashMap<u32, u32>) -> u32 {
    let copy: HashMap<u32, u32> = m.clone();
    let mut total = 0;
    for v in copy.values() {
        total += v;
    }
    total
}
