//! Fixture: a criterion group absent from baseline and CI trips R8.
pub fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mygroup/fast");
    let _ = &mut group;
    c.bench_function("solo/one", |_| {});
}
