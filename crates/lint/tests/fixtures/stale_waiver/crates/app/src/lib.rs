//! Fixture: defective waivers are themselves findings.

// lint: allow(panic-hygiene) — suppresses nothing on the next line
pub fn fine() {}

// lint: allow(made-up-rule) — no such rule exists
pub fn also_fine() {}

pub fn reasonless() {} // lint: allow(exec-parallelism)
