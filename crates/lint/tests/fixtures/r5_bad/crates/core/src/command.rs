//! Fixture: a Command variant absent from from_json must trip R5.
pub const WIRE_VERSION: u64 = 1;

pub enum Command {
    Map,
    Zoom(usize),
}

impl Command {
    pub fn to_json(&self) -> &'static str {
        match self {
            Command::Map => "map",
            Command::Zoom(_) => "zoom",
        }
    }

    pub fn from_json(text: &str) -> Option<Command> {
        match text {
            "map" => Some(Command::Map),
            _ => None,
        }
    }
}
