//! Fixture: two budget call sites must trip the exactly-one check.
pub fn budget_a() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
pub fn budget_b() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
