//! Fixture: thread primitives outside crates/exec must trip R1.
pub fn go() {
    std::thread::spawn(|| {});
}
