//! # blaeu-bench — shared workloads for benches and the figure harness
//!
//! Both the Criterion benches and the `figures` binary draw their inputs
//! from here, so a number printed by a figure and a number measured by a
//! bench describe the same workload.

#![warn(missing_docs)]

pub mod replay;

pub use replay::{
    generate_corpus, load_corpus, replay_corpus, LatencyHistogram, RecordedSession, ReplayReport,
};

use blaeu_cluster::Points;
use blaeu_core::{preprocess, MetricChoice, PreprocessConfig};
use blaeu_store::generate::{oecd, planted, OecdConfig, PlantedConfig, PlantedTruth, ThemeSpec};
use blaeu_store::{Table, TableView};

/// Fixed seed used by every workload (fully reproducible runs).
pub const SEED: u64 = 20160913;

/// The scaled-down Countries & Work table used by fast figures
/// (same structure as the paper's 6 823 × 378, smaller for quick runs).
pub fn oecd_small() -> (Table, PlantedTruth) {
    oecd(&OecdConfig {
        nrows: 1200,
        ncols: 36,
        missing_rate: 0.0,
        seed: SEED,
    })
    .expect("generator cannot fail on valid config")
}

/// The paper-sized Countries & Work table (6 823 × 378).
pub fn oecd_full() -> (Table, PlantedTruth) {
    oecd(&OecdConfig {
        seed: SEED,
        ..OecdConfig::default()
    })
    .expect("generator cannot fail on valid config")
}

/// A planted numeric table with `clusters` blobs over one 6-column theme,
/// used for clustering-focused experiments (C1–C5, A2, A3).
pub fn blobs(nrows: usize, clusters: usize) -> (Table, PlantedTruth) {
    planted(&PlantedConfig {
        name: "blobs".to_owned(),
        nrows,
        themes: vec![ThemeSpec::numeric("m", 6)],
        clusters,
        cluster_sep: 5.0,
        cluster_weights: Vec::new(),
        noise: 0.4,
        missing_rate: 0.0,
        seed: SEED,
    })
    .expect("generator cannot fail on valid config")
}

/// The wide table the progressive benches run on: 48 columns
/// (8 planted numeric themes × 6 columns) over 50 000 rows — big enough
/// that an exact map is far from interactive while the level-0 coarse
/// map stays in the single-digit-millisecond regime.
pub fn wide() -> (Table, PlantedTruth) {
    planted(&PlantedConfig {
        name: "wide".to_owned(),
        nrows: 50_000,
        themes: (0..8)
            .map(|t| ThemeSpec::numeric(format!("t{t}"), 6))
            .collect(),
        clusters: 4,
        cluster_sep: 5.0,
        cluster_weights: Vec::new(),
        noise: 0.4,
        missing_rate: 0.0,
        seed: SEED,
    })
    .expect("generator cannot fail on valid config")
}

/// Names of the `blobs` measure columns.
pub fn blob_columns(truth: &PlantedTruth) -> Vec<&str> {
    truth
        .theme_of_column
        .iter()
        .map(|(c, _)| c.as_str())
        .collect()
}

/// Preprocesses a view's columns into clusterable points (Gower).
pub fn as_points(view: &TableView, columns: &[&str]) -> Points {
    preprocess(view, columns, &PreprocessConfig::default())
        .expect("columns exist")
        .into_points(MetricChoice::Gower)
}

/// Formats a float for table output (3 significant decimals).
pub fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let ms = d.as_secs_f64() * 1000.0;
    if ms < 1.0 {
        format!("{:.0} µs", ms * 1000.0)
    } else if ms < 1000.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.2} s", ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        let (t, truth) = oecd_small();
        assert_eq!(t.nrows(), 1200);
        assert_eq!(truth.theme_names.len(), 10);
        let (t, truth) = blobs(500, 3);
        assert_eq!(t.nrows(), 500);
        assert_eq!(blob_columns(&truth).len(), 6);
        let p = as_points(&t.into(), &blob_columns(&truth));
        assert_eq!(p.len(), 500);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(
            fmt_duration(std::time::Duration::from_millis(1500)),
            "1.50 s"
        );
        assert_eq!(
            fmt_duration(std::time::Duration::from_micros(250)),
            "250 µs"
        );
    }
}
