//! Replay load harness: recorded command journals driven back over the
//! wire against a live [`blaeu_net::NetServer`].
//!
//! A journal directory written by [`blaeu_server::SessionJournal`] is a
//! complete, self-verifying record of an exploration workload: which
//! table each session opened (and with what seed), every command it ran,
//! and the digest of every response. This module turns such a directory
//! into a load generator — N concurrent raw-`TcpStream` clients, one per
//! recorded session, replaying the recorded commands in order and
//! checking every returned digest against the recorded one — plus a
//! dependency-free [`LatencyHistogram`] (log2 microsecond buckets) for
//! the latency report.
//!
//! The digest check is the point: a replay run is not just a throughput
//! number, it is an end-to-end determinism audit of the whole stack
//! (storage, analysis, session tier, wire encoding) against a past run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use blaeu_core::{Command, ExplorerConfig};
use blaeu_exec::JobPool;
use blaeu_server::{
    journal_file_id, read_journal, AsyncSessionServer, JournalRecord, RecordedOutcome, ServerConfig,
};
use blaeu_store::Table;
use serde_json::{json, Value};

/// One recorded session: the open parameters plus the ordered command
/// stream with its verified outcomes.
#[derive(Debug, Clone)]
pub struct RecordedSession {
    /// Session id the journal file was written under (informational —
    /// replay opens fresh sessions and gets fresh ids).
    pub id: u64,
    /// Registered table name the session ran over.
    pub table: String,
    /// Mapper seed the session was opened with.
    pub seed: u64,
    /// The commands in execution order, each with its recorded outcome.
    pub commands: Vec<(Command, RecordedOutcome)>,
}

/// Loads every parseable session journal under `dir`, sorted by session
/// id. Files with a corrupt head (no leading `open` record) are skipped;
/// a torn tail only truncates that session's command stream — replay
/// drives exactly the valid prefix recovery would accept.
pub fn load_corpus(dir: &Path) -> std::io::Result<Vec<RecordedSession>> {
    let mut sessions = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(id) = name.to_str().and_then(journal_file_id) else {
            continue;
        };
        let read = read_journal(&entry.path())?;
        let mut records = read.records.into_iter();
        let Some(JournalRecord::Open { table, seed, .. }) = records.next() else {
            continue;
        };
        let commands: Vec<(Command, RecordedOutcome)> = records
            .filter_map(|record| match record {
                JournalRecord::Command {
                    command, outcome, ..
                } => Some((command, outcome)),
                _ => None,
            })
            .collect();
        sessions.push(RecordedSession {
            id,
            table,
            seed,
            commands,
        });
    }
    sessions.sort_by_key(|s| s.id);
    Ok(sessions)
}

/// The exploration script every synthesized session runs: themes, a
/// map, cheap reads, a rollback — the mix a real front-end generates,
/// heavy enough to exercise the analysis path, cheap enough to scale
/// to thousands of wire sessions.
fn synthetic_script() -> Vec<Command> {
    vec![
        Command::Themes,
        Command::SelectTheme(0),
        Command::Map,
        Command::Sql,
        Command::Depth,
        Command::Rollback,
        Command::Depth,
    ]
}

/// Synthesizes a replay corpus of `sessions` recorded sessions without
/// needing journal files on disk: the script runs once in-process per
/// distinct mapper seed (capturing real digests), then each prototype
/// is replicated round-robin across the corpus. Because digests are a
/// pure function of (table, seed, command history), thousands of
/// sessions cost `distinct_seeds` in-process runs to generate — which
/// is what lets the load harness scale to corpus sizes no hand-recorded
/// journal directory would reach.
pub fn generate_corpus(
    table: &Arc<Table>,
    table_name: &str,
    sessions: usize,
    distinct_seeds: u64,
) -> Vec<RecordedSession> {
    let distinct = distinct_seeds.max(1);
    let engine = AsyncSessionServer::new(ServerConfig::default());
    let prototypes: Vec<Vec<(Command, RecordedOutcome)>> = (0..distinct)
        .map(|seed| {
            let mut config = ExplorerConfig::default();
            config.mapper.seed = seed;
            let id = engine
                .open_session(Arc::clone(table), config)
                .expect("session opens over the generation table");
            let commands = synthetic_script()
                .into_iter()
                .map(|command| {
                    let outcome = RecordedOutcome::of(&engine.request(id, command.clone()));
                    (command, outcome)
                })
                .collect();
            engine.close(id).expect("session closes");
            commands
        })
        .collect();
    (0..sessions)
        .map(|i| {
            let seed = i as u64 % distinct;
            RecordedSession {
                id: i as u64 + 1,
                table: table_name.to_owned(),
                seed,
                commands: prototypes[seed as usize].clone(),
            }
        })
        .collect()
}

/// Number of log2 microsecond buckets — bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs, so 40 buckets cover up to ~12.7 days.
const BUCKETS: usize = 40;

/// A fixed-size latency histogram over log2 microsecond buckets: cheap
/// to record into, mergeable across threads, good enough for p50/p99 on
/// wire latencies (quantiles resolve to within a factor of two, plus
/// exact min/max).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        let micros = sample.as_micros().max(1) as u64;
        let bucket = (63 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper edge of the bucket
    /// holding that rank, clamped to the observed max. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = Duration::from_micros(1u64 << (bucket + 1).min(63));
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// One-line latency summary: count, mean, p50/p99, max.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            crate::fmt_duration(self.mean()),
            crate::fmt_duration(self.quantile(0.50)),
            crate::fmt_duration(self.quantile(0.99)),
            crate::fmt_duration(self.max()),
        )
    }
}

/// What one replay run observed.
#[derive(Debug)]
pub struct ReplayReport {
    /// Sessions replayed to completion.
    pub sessions: usize,
    /// Commands sent over the wire.
    pub commands: u64,
    /// Commands whose wire outcome did not match the recorded one —
    /// **any non-zero value is a determinism violation**.
    pub mismatches: u64,
    /// Per-command wire latencies (request write → response parsed).
    pub latency: LatencyHistogram,
    /// Wall-clock time of the whole replay.
    pub elapsed: Duration,
}

/// A minimal keep-alive HTTP/1.1 client over one raw `TcpStream` — the
/// same dumb-on-purpose framing the loopback tests use, so the harness
/// measures the server, not a client library.
struct WireClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl WireClient {
    fn connect(addr: SocketAddr) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(WireClient {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// One request/response round-trip; returns `(status, body JSON)`.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, Value)> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: replay\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.writer.write_all(body.as_bytes())?;
        }
        self.writer.flush()?;

        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_owned());
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            if header.trim().is_empty() {
                break;
            }
            if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let value = serde_json::from_slice(&body).map_err(|_| bad("unparseable body"))?;
        Ok((status, value))
    }
}

/// True when the wire response to a replayed command matches its
/// recorded outcome: a `2xx` whose `digest` hex equals the recorded
/// digest, or an error body whose `error.code` equals the recorded kind.
fn wire_matches(status: u16, body: &Value, recorded: &RecordedOutcome) -> bool {
    match recorded {
        RecordedOutcome::Digest(digest) => {
            status == 200
                && body["digest"]
                    .as_str()
                    .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                    == Some(*digest)
        }
        RecordedOutcome::Error(kind) => {
            status != 200 && body["error"]["code"].as_str() == Some(kind.as_str())
        }
    }
}

/// Replays one recorded session over its own connection: open (with the
/// recorded seed), run every command in order checking outcomes, close.
fn replay_one(
    addr: SocketAddr,
    recorded: &RecordedSession,
) -> std::io::Result<(u64, u64, LatencyHistogram)> {
    let mut client = WireClient::connect(addr)?;
    let open = serde_json::to_string(&json!({"table": recorded.table, "seed": recorded.seed}))
        .expect("serialization is infallible");
    let (status, body) = client.request("POST", "/sessions", Some(&open))?;
    if status != 201 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("open of recorded session {} answered {status}", recorded.id),
        ));
    }
    let session = body["session"].as_u64().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "open body without session id",
        )
    })?;
    let path = format!("/sessions/{session}/commands");
    let mut latency = LatencyHistogram::new();
    let mut commands = 0u64;
    let mut mismatches = 0u64;
    for (command, outcome) in &recorded.commands {
        let payload =
            serde_json::to_string(&command.to_json()).expect("serialization is infallible");
        let start = Instant::now();
        let (status, body) = client.request("POST", &path, Some(&payload))?;
        latency.record(start.elapsed());
        commands += 1;
        if !wire_matches(status, &body, outcome) {
            mismatches += 1;
        }
    }
    let _ = client.request("DELETE", &format!("/sessions/{session}"), None)?;
    Ok((commands, mismatches, latency))
}

/// Replays a whole corpus against a live server: one wire session per
/// recorded session, up to `concurrency` in flight at once (0 = one
/// worker per recorded session). Sessions that fail at the transport
/// level (connect refused, torn socket) count every remaining command
/// as a mismatch rather than aborting the run.
pub fn replay_corpus(
    addr: SocketAddr,
    corpus: &[RecordedSession],
    concurrency: usize,
) -> ReplayReport {
    let started = Instant::now();
    let workers = if concurrency == 0 {
        corpus.len().max(1)
    } else {
        concurrency
    };
    let pool = JobPool::new(workers);
    let handles: Vec<_> = corpus
        .iter()
        .map(|recorded| {
            let recorded = Arc::new(recorded.clone());
            pool.submit(move || {
                let total = recorded.commands.len() as u64;
                replay_one(addr, &recorded)
                    .unwrap_or_else(|_| (total, total, LatencyHistogram::new()))
            })
        })
        .collect();
    let mut report = ReplayReport {
        sessions: 0,
        commands: 0,
        mismatches: 0,
        latency: LatencyHistogram::new(),
        elapsed: Duration::ZERO,
    };
    for handle in handles {
        if let Some((commands, mismatches, latency)) = handle.join() {
            report.sessions += 1;
            report.commands += commands;
            report.mismatches += mismatches;
            report.latency.merge(&latency);
        }
    }
    report.elapsed = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for micros in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Duration::from_micros(10));
        assert_eq!(h.max(), Duration::from_micros(5000));
        // p50 lands in a bucket whose upper edge is within 2x of the
        // true median (50 µs → bucket [32,64) µs → edge 64 µs).
        let p50 = h.quantile(0.50);
        assert!(
            p50 >= Duration::from_micros(50) && p50 <= Duration::from_micros(128),
            "{p50:?}"
        );
        // p99+ resolves to the max tail sample's bucket, clamped to max.
        assert_eq!(h.quantile(1.0), Duration::from_micros(5000));
        assert!(h.mean() >= Duration::from_micros(500));
    }

    #[test]
    fn histograms_merge_like_one_stream() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for (i, micros) in [3u64, 17, 90, 1200, 7, 45, 300, 9000].iter().enumerate() {
            let d = Duration::from_micros(*micros);
            if i % 2 == 0 {
                left.record(d);
            } else {
                right.record(d);
            }
            all.record(d);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
        assert_eq!(left.quantile(0.5), all.quantile(0.5));
        assert_eq!(left.quantile(0.99), all.quantile(0.99));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    /// A generated corpus replays cleanly against a live server hosting
    /// the same table: every synthesized digest matches over the wire,
    /// sessions with the same seed share outcomes, and the replicated
    /// tail costs no extra in-process runs.
    #[test]
    fn generated_corpus_replays_bit_identical() {
        use blaeu_net::{NetConfig, NetServer};
        use blaeu_store::generate::{hollywood, HollywoodConfig};

        let (table, _) = hollywood(&HollywoodConfig {
            nrows: 200,
            ..HollywoodConfig::default()
        })
        .expect("generator cannot fail on valid config");
        let table = Arc::new(table);

        let corpus = generate_corpus(&table, "hollywood", 9, 3);
        assert_eq!(corpus.len(), 9);
        assert!(corpus.iter().all(|s| !s.commands.is_empty()));
        // Replicas of the same seed carry identical recorded outcomes.
        let debug = |s: &RecordedSession| format!("{:?}", s.commands);
        assert_eq!(debug(&corpus[0]), debug(&corpus[3]));
        assert_eq!(corpus[0].seed, corpus[3].seed);
        assert_ne!(corpus[0].seed, corpus[1].seed);

        let engine = AsyncSessionServer::new(ServerConfig::default());
        let net = NetServer::bind("127.0.0.1:0", Arc::new(engine), NetConfig::default())
            .expect("loopback bind");
        net.register_table("hollywood", Arc::clone(&table));
        let report = replay_corpus(net.local_addr(), &corpus, 4);
        net.shutdown();

        assert_eq!(report.sessions, 9);
        assert_eq!(report.mismatches, 0, "generated digests must replay");
        assert_eq!(
            report.commands,
            corpus.iter().map(|s| s.commands.len()).sum::<usize>() as u64
        );
    }
}
