//! `replay_load` — drive recorded session journals back over the wire.
//!
//! Points the replay harness ([`blaeu_bench::replay`]) at a journal
//! directory written by a journaled engine and replays every recorded
//! session as a concurrent wire client, verifying each response digest
//! against the recorded one. Exits non-zero if any command's outcome
//! diverges — a failed run means the stack is no longer bit-identical
//! with the run that wrote the journal.
//!
//! ```sh
//! # replay against a self-hosted server (demo tables registered):
//! cargo run --release -p blaeu-bench --bin replay_load -- --journal /tmp/journals
//! # replay against an already-running server:
//! cargo run --release -p blaeu-bench --bin replay_load -- \
//!     --journal /tmp/journals --addr 127.0.0.1:7878
//! ```
//!
//! Options: `--journal DIR` (required) · `--addr HOST:PORT` (target an
//! external server instead of self-hosting) · `--sessions N` (replay at
//! most N recorded sessions) · `--concurrency N` (wire clients in
//! flight; default one per session) · `--rows N` (self-hosted demo
//! table size; must match what the journals were recorded against).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

use blaeu_bench::replay::{load_corpus, replay_corpus};
use blaeu_net::{NetConfig, NetServer};
use blaeu_server::{AsyncSessionServer, ServerConfig};
use blaeu_store::generate::{hollywood, HollywoodConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1))
        .filter(|a| !a.starts_with("--"))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(journal_dir) = flag_value(&args, "--journal").map(PathBuf::from) else {
        eprintln!(
            "usage: replay_load --journal DIR [--addr HOST:PORT] [--sessions N] \
             [--concurrency N] [--rows N]"
        );
        std::process::exit(2);
    };
    let sessions_cap: usize = flag_value(&args, "--sessions")
        .map(|v| v.parse().expect("--sessions takes a count"))
        .unwrap_or(usize::MAX);
    let concurrency: usize = flag_value(&args, "--concurrency")
        .map(|v| v.parse().expect("--concurrency takes a count"))
        .unwrap_or(0);
    let rows: usize = flag_value(&args, "--rows")
        .map(|v| v.parse().expect("--rows takes a count"))
        .unwrap_or_else(|| HollywoodConfig::default().nrows);

    let mut corpus = match load_corpus(&journal_dir) {
        Ok(corpus) => corpus,
        Err(e) => {
            eprintln!("cannot read journal dir {}: {e}", journal_dir.display());
            std::process::exit(2);
        }
    };
    if corpus.is_empty() {
        eprintln!("no session journals under {}", journal_dir.display());
        std::process::exit(2);
    }
    corpus.truncate(sessions_cap);
    let total_commands: usize = corpus.iter().map(|s| s.commands.len()).sum();
    println!(
        "corpus: {} sessions, {} commands from {}",
        corpus.len(),
        total_commands,
        journal_dir.display()
    );

    // Either target a running server, or self-host one over the demo
    // table (recorded digests only match if the journals were recorded
    // against the same table — size it with --rows).
    let (addr, hosted): (SocketAddr, Option<NetServer>) = match flag_value(&args, "--addr") {
        Some(addr) => (addr.parse().expect("--addr takes HOST:PORT"), None),
        None => {
            let (table, _) = hollywood(&HollywoodConfig {
                nrows: rows,
                ..HollywoodConfig::default()
            })
            .expect("generator cannot fail on valid config");
            let engine = Arc::new(AsyncSessionServer::new(ServerConfig::default()));
            let net = NetServer::bind("127.0.0.1:0", engine, NetConfig::default())
                .expect("loopback bind");
            net.register_table("hollywood", Arc::new(table));
            println!(
                "self-hosting on {} (hollywood, {rows} rows)",
                net.local_addr()
            );
            (net.local_addr(), Some(net))
        }
    };

    let report = replay_corpus(addr, &corpus, concurrency);
    if let Some(net) = hosted {
        net.shutdown();
    }

    let secs = report.elapsed.as_secs_f64();
    println!(
        "replayed {} sessions / {} commands in {:.2}s ({:.0} cmd/s)",
        report.sessions,
        report.commands,
        secs,
        report.commands as f64 / secs.max(1e-9),
    );
    println!("latency: {}", report.latency.summary());
    if report.mismatches > 0 {
        eprintln!(
            "FAIL: {} of {} commands diverged from their recorded outcome",
            report.mismatches, report.commands
        );
        std::process::exit(1);
    }
    println!("all {} outcomes matched the recording", report.commands);
}
