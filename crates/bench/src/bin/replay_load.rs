//! `replay_load` — drive recorded session journals back over the wire.
//!
//! Points the replay harness ([`blaeu_bench::replay`]) at a journal
//! directory written by a journaled engine and replays every recorded
//! session as a concurrent wire client, verifying each response digest
//! against the recorded one. Exits non-zero if any command's outcome
//! diverges — a failed run means the stack is no longer bit-identical
//! with the run that wrote the journal.
//!
//! ```sh
//! # replay against a self-hosted server (demo tables registered):
//! cargo run --release -p blaeu-bench --bin replay_load -- --journal /tmp/journals
//! # replay against an already-running server:
//! cargo run --release -p blaeu-bench --bin replay_load -- \
//!     --journal /tmp/journals --addr 127.0.0.1:7878
//! # synthesize a corpus instead of reading journals — thousands of
//! # concurrent wire sessions from a handful of in-process runs:
//! cargo run --release -p blaeu-bench --bin replay_load -- \
//!     --generate 2000 --seeds 8 --concurrency 64
//! ```
//!
//! Options: `--journal DIR` or `--generate N` (required; journals from
//! disk, or a synthesized corpus of N sessions) · `--seeds K` (distinct
//! mapper seeds in a generated corpus; default 8) · `--addr HOST:PORT`
//! (target an external server instead of self-hosting) · `--sessions N`
//! (replay at most N recorded sessions) · `--concurrency N` (wire
//! clients in flight; default one per session) · `--rows N`
//! (self-hosted demo table size; must match what the journals were
//! recorded against).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

use blaeu_bench::replay::{generate_corpus, load_corpus, replay_corpus};
use blaeu_net::{NetConfig, NetServer};
use blaeu_server::{AsyncSessionServer, ServerConfig};
use blaeu_store::generate::{hollywood, HollywoodConfig};
use blaeu_store::Table;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1))
        .filter(|a| !a.starts_with("--"))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let journal_dir = flag_value(&args, "--journal").map(PathBuf::from);
    let generate: Option<usize> =
        flag_value(&args, "--generate").map(|v| v.parse().expect("--generate takes a count"));
    if journal_dir.is_none() && generate.is_none() {
        eprintln!(
            "usage: replay_load (--journal DIR | --generate N) [--seeds K] \
             [--addr HOST:PORT] [--sessions N] [--concurrency N] [--rows N]"
        );
        std::process::exit(2);
    }
    let sessions_cap: usize = flag_value(&args, "--sessions")
        .map(|v| v.parse().expect("--sessions takes a count"))
        .unwrap_or(usize::MAX);
    let concurrency: usize = flag_value(&args, "--concurrency")
        .map(|v| v.parse().expect("--concurrency takes a count"))
        .unwrap_or(0);
    let rows: usize = flag_value(&args, "--rows")
        .map(|v| v.parse().expect("--rows takes a count"))
        .unwrap_or_else(|| HollywoodConfig::default().nrows);
    let seeds: u64 = flag_value(&args, "--seeds")
        .map(|v| v.parse().expect("--seeds takes a count"))
        .unwrap_or(8);

    // The demo table — hosted locally unless --addr targets an external
    // server, and always the substrate a generated corpus records its
    // digests against.
    let table: Arc<Table> = {
        let (table, _) = hollywood(&HollywoodConfig {
            nrows: rows,
            ..HollywoodConfig::default()
        })
        .expect("generator cannot fail on valid config");
        Arc::new(table)
    };

    let mut corpus = match (&journal_dir, generate) {
        (Some(dir), _) => {
            let corpus = match load_corpus(dir) {
                Ok(corpus) => corpus,
                Err(e) => {
                    eprintln!("cannot read journal dir {}: {e}", dir.display());
                    std::process::exit(2);
                }
            };
            if corpus.is_empty() {
                eprintln!("no session journals under {}", dir.display());
                std::process::exit(2);
            }
            corpus
        }
        (None, Some(n)) => {
            println!(
                "generating {n} sessions from {seeds} distinct seeds (hollywood, {rows} rows)"
            );
            generate_corpus(&table, "hollywood", n, seeds)
        }
        (None, None) => unreachable!("usage check above"),
    };
    corpus.truncate(sessions_cap);
    let total_commands: usize = corpus.iter().map(|s| s.commands.len()).sum();
    println!(
        "corpus: {} sessions, {} commands from {}",
        corpus.len(),
        total_commands,
        journal_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "generator".to_owned()),
    );

    // Either target a running server, or self-host one over the demo
    // table (recorded digests only match if the journals were recorded
    // against the same table — size it with --rows).
    let (addr, hosted): (SocketAddr, Option<NetServer>) = match flag_value(&args, "--addr") {
        Some(addr) => (addr.parse().expect("--addr takes HOST:PORT"), None),
        None => {
            let engine = Arc::new(AsyncSessionServer::new(ServerConfig::default()));
            let net = NetServer::bind("127.0.0.1:0", engine, NetConfig::default())
                .expect("loopback bind");
            net.register_table("hollywood", Arc::clone(&table));
            println!(
                "self-hosting on {} (hollywood, {rows} rows)",
                net.local_addr()
            );
            (net.local_addr(), Some(net))
        }
    };

    let report = replay_corpus(addr, &corpus, concurrency);
    if let Some(net) = hosted {
        net.shutdown();
    }

    let secs = report.elapsed.as_secs_f64();
    println!(
        "replayed {} sessions / {} commands in {:.2}s ({:.0} cmd/s)",
        report.sessions,
        report.commands,
        secs,
        report.commands as f64 / secs.max(1e-9),
    );
    println!("latency: {}", report.latency.summary());
    if report.mismatches > 0 {
        eprintln!(
            "FAIL: {} of {} commands diverged from their recorded outcome",
            report.mismatches, report.commands
        );
        std::process::exit(1);
    }
    println!("all {} outcomes matched the recording", report.commands);
}
