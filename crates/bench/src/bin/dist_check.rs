//! `dist_check` — multi-process digest parity for the shard fan-out.
//!
//! The distributed tier's one promise is bit-identity: a coordinator
//! merging worker partials in shard order must produce byte-for-byte
//! the response an in-process run produces. This binary checks that
//! promise across real process boundaries (separate address spaces,
//! real sockets — not threads in one test binary):
//!
//! ```sh
//! # self-orchestrating: spawn N worker processes on loopback,
//! # coordinate the canonical op set, diff digests vs in-process,
//! # exit non-zero on any mismatch (what CI runs):
//! cargo run --release -p blaeu-bench --bin dist_check -- --check 2
//!
//! # by hand: one worker per terminal, then coordinate against them:
//! cargo run --release -p blaeu-bench --bin dist_check -- --worker
//! cargo run --release -p blaeu-bench --bin dist_check -- \
//!     --coordinate 127.0.0.1:41001,127.0.0.1:41002
//!
//! # the single-process reference digests:
//! cargo run --release -p blaeu-bench --bin dist_check -- --inprocess
//! ```
//!
//! Every process builds the same seeded OECD table (`blaeu_bench::
//! oecd_small`), so workers are full replicas and the shard layout —
//! a pure function of op and row count — agrees everywhere by
//! construction.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command as ProcessCommand, Stdio};
use std::sync::Arc;

use blaeu_bench::oecd_small;
use blaeu_core::{Response, SketchOp};
use blaeu_net::{NetConfig, NetServer};
use blaeu_server::{AsyncSessionServer, ServerConfig, ShardCoordinator};
use blaeu_store::{Table, TableView};

/// Name every worker registers the replica under.
const TABLE: &str = "oecd";

/// The shared fixture: deterministic seeded generator, so every
/// process holds a bit-identical replica.
fn table() -> Arc<Table> {
    Arc::new(oecd_small().0)
}

/// The canonical op set: one op per mergeable analysis family. The
/// CLARA medoids are fixed, evenly spaced row indices so every process
/// (and every run) assigns against the same centers.
fn ops() -> Vec<(&'static str, SketchOp)> {
    let numeric: Vec<String> = [
        "unemployment_rate",
        "long_term_unemployment",
        "female_unemployment",
        "pct_health_insurance",
        "life_expectancy",
        "health_spending_pct_gdp",
    ]
    .iter()
    .map(|c| (*c).to_owned())
    .collect();
    vec![
        (
            "dep_matrix",
            SketchOp::DepMatrix {
                columns: numeric.clone(),
            },
        ),
        (
            "describe_numeric",
            SketchOp::Describe {
                column: "life_expectancy".to_owned(),
                top_k: 5,
            },
        ),
        (
            "describe_categorical",
            SketchOp::Describe {
                column: "country".to_owned(),
                top_k: 5,
            },
        ),
        (
            "histogram",
            SketchOp::Histogram {
                column: "unemployment_rate".to_owned(),
                bins: 16,
            },
        ),
        (
            "clara_assign",
            SketchOp::ClaraAssign {
                columns: numeric,
                medoids: vec![5, 400, 800, 1100],
            },
        ),
    ]
}

/// Runs `op` start-to-finish in this process — the reference digest.
fn in_process_digest(table: &Arc<Table>, op: &SketchOp) -> u64 {
    let view = TableView::new(Arc::clone(table));
    let plan = op.plan(&view).expect("fixture columns exist");
    let partial = plan.run_range(0..plan.spec().shard_count(), 0);
    let result = op.finalize(partial).expect("partial is well-formed");
    Response::Sketch(Box::new(result)).digest()
}

/// `--worker`: bind a worker on an ephemeral loopback port, announce
/// the address on stdout, serve until killed.
fn run_worker() -> ! {
    let engine = Arc::new(AsyncSessionServer::new(ServerConfig::default()));
    let net = NetServer::bind("127.0.0.1:0", engine, NetConfig::default())
        .expect("loopback bind cannot fail");
    net.register_table(TABLE, table());
    println!("listening {}", net.local_addr());
    loop {
        std::thread::park();
    }
}

/// Coordinates the op set against `workers`, printing one digest line
/// per op; returns the digests for the caller to diff.
fn coordinate(workers: Vec<String>) -> Vec<(&'static str, u64)> {
    let nrows = table().nrows();
    let coordinator = ShardCoordinator::new(workers);
    let digests: Vec<(&'static str, u64)> = ops()
        .iter()
        .map(|(name, op)| {
            let response = coordinator
                .run(TABLE, op, nrows)
                .unwrap_or_else(|e| panic!("fan-out of {name} failed: {e}"));
            (*name, response.digest())
        })
        .collect();
    for (name, digest) in &digests {
        println!("{name:<20} {digest:016x}");
    }
    digests
}

/// `--check N`: spawn N worker subprocesses, coordinate against them,
/// and diff every digest against the in-process reference.
fn run_check(workers: usize) -> i32 {
    let exe = std::env::current_exe().expect("own path");
    let mut children: Vec<Child> = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..workers {
        let mut child = ProcessCommand::new(&exe)
            .arg("--worker")
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker announces its address");
        let addr = line
            .trim()
            .strip_prefix("listening ")
            .unwrap_or_else(|| panic!("unexpected worker banner {line:?}"))
            .to_owned();
        println!("worker {} on {addr}", children.len() + 1);
        addrs.push(addr);
        children.push(child);
    }

    let fixture = table();
    let fanned = coordinate(addrs);
    let mut failures = 0;
    for (name, got) in &fanned {
        let op = ops()
            .into_iter()
            .find(|(n, _)| n == name)
            .expect("op set is stable")
            .1;
        let expected = in_process_digest(&fixture, &op);
        if *got == expected {
            println!("OK   {name}: {got:016x}");
        } else {
            println!("FAIL {name}: fan-out {got:016x} != in-process {expected:016x}");
            failures += 1;
        }
    }
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    if failures == 0 {
        println!(
            "all {} ops bit-identical across {} worker processes",
            fanned.len(),
            workers
        );
        0
    } else {
        eprintln!("{failures} of {} ops diverged", fanned.len());
        1
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1))
        .filter(|a| !a.starts_with("--"))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--worker") {
        run_worker();
    }
    if let Some(n) = flag_value(&args, "--check") {
        let workers: usize = n.parse().expect("--check takes a worker count");
        std::process::exit(run_check(workers.max(1)));
    }
    if let Some(list) = flag_value(&args, "--coordinate") {
        let workers: Vec<String> = list.split(',').map(|a| a.trim().to_owned()).collect();
        coordinate(workers);
        return;
    }
    if args.iter().any(|a| a == "--inprocess") {
        let fixture = table();
        for (name, op) in ops() {
            println!("{name:<20} {:016x}", in_process_digest(&fixture, &op));
        }
        return;
    }
    eprintln!("usage: dist_check --check N | --worker | --coordinate ADDR[,ADDR...] | --inprocess");
    std::process::exit(2);
}
