//! Regenerates every figure, demonstration scenario and embedded claim of
//! the Blaeu paper (see DESIGN.md §4 for the experiment index).
//!
//! ```sh
//! cargo run -p blaeu-bench --release --bin figures            # everything
//! cargo run -p blaeu-bench --release --bin figures f1b c3 a2  # a subset
//! cargo run -p blaeu-bench --release --bin figures -- --json out.json
//! ```
//!
//! `--json <path>` writes the determinism digest: the figure pipeline's
//! *numeric outcomes* (themes, map regions, dependency-matrix cells,
//! CLARA medoids/deviations — floats as exact bit patterns, never
//! wall-clock timings), byte-identical for every `BLAEU_THREADS` value.
//! CI diffs the digest across thread counts.
//!
//! `--export-oecd <dir>` writes the small Countries & Work table as both
//! `oecd_small.csv` and `oecd_small.snap` (the column snapshot format).
//! `--table <path>` makes `--json` load the OECD table from that file
//! instead of regenerating it — CI diffs the CSV-loaded digest against
//! the snapshot-loaded one, proving the two load paths are equivalent.

use std::time::Instant;

use blaeu_bench::{as_points, blob_columns, blobs, fmt, fmt_duration, oecd_full, oecd_small, SEED};
use blaeu_cluster::{
    adjusted_rand_index, clara, kmeans, label_nmi, mc_silhouette, pam, select_k, silhouette_score,
    ClaraConfig, DistanceMatrix, KMeansConfig, KSelectConfig, McSilhouetteConfig, PamConfig,
};
use blaeu_core::render::{render_highlight, render_map, render_status, render_themes};
use blaeu_core::{
    build_map, detect_themes, DataMap, DependencyGraph, Explorer, ExplorerConfig, MapperConfig,
    SessionManager, ThemeConfig,
};
use blaeu_stats::{dependency_matrix, DependencyMeasure, DependencyOptions};
use blaeu_store::generate::{
    hollywood, lofar, planted, ColumnShape, HollywoodConfig, LofarConfig, PlantedConfig,
    PlantedTruth, ThemeSpec,
};
use blaeu_store::{
    read_csv, write_csv, Column, ColumnRole, CsvOptions, Table, TableBuilder, TableView,
};
use blaeu_tree::{accuracy, CartConfig, DecisionTree};

fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id} — {title}");
    println!("================================================================");
}

fn region_labels(map: &DataMap, nrows: usize) -> Vec<usize> {
    let mut labels = vec![0usize; nrows];
    for leaf in map.leaves() {
        for row in map.rows_of(leaf.id).expect("leaf ids valid") {
            labels[row as usize] = leaf.cluster;
        }
    }
    labels
}

/// Shared explorer over the small OECD table for the Figure 1 sequence.
fn oecd_explorer() -> (Explorer, PlantedTruth) {
    let (table, truth) = oecd_small();
    let ex = Explorer::open(table, ExplorerConfig::default()).expect("openable");
    (ex, truth)
}

fn labor_theme_index(ex: &Explorer) -> usize {
    ex.themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c == "pct_employees_long_hours"))
        .expect("labor theme present")
}

fn f1a() {
    header("F1a", "Figure 1a: list of themes (OECD Countries & Work)");
    let (ex, _) = oecd_explorer();
    println!("{}", render_themes(ex.theme_set(), 4));
    println!(
        "paper: themes group unemployment, health, labor-conditions columns.\n\
         measured: {} themes; labor headliners share theme #{}.",
        ex.themes().len(),
        labor_theme_index(&ex)
    );
}

fn f1b() {
    header("F1b", "Figure 1b: data map of the labor theme");
    let (mut ex, _) = oecd_explorer();
    let labor = labor_theme_index(&ex);
    let map = ex.select_theme(labor).expect("mappable");
    println!("{}", render_map(map));
    println!(
        "paper: top split '% employees working long hours >= 20', then\n\
         'average income < 22'. measured splits shown above."
    );
}

fn f1c() {
    header("F1c", "Figure 1c: zoom + highlight country names");
    let (mut ex, _) = oecd_explorer();
    let labor = labor_theme_index(&ex);
    let map = ex.select_theme(labor).expect("mappable");
    let pleasant = map
        .leaves()
        .iter()
        .find(|r| {
            r.description
                .iter()
                .any(|d| d.contains("pct_employees_long_hours <"))
                && r.description.iter().any(|d| d.contains(">="))
        })
        .map(|r| r.id)
        .unwrap_or_else(|| map.leaves().iter().max_by_key(|r| r.count).unwrap().id);
    ex.zoom(pleasant).expect("zoomable");
    println!("{}", render_map(ex.map().expect("map")));
    let hl = ex.highlight("country").expect("country column");
    println!("{}", render_highlight(&hl));
    println!("paper: Switzerland, Canada and Norway appear in the zoomed region.");
}

fn f1d() {
    header("F1d", "Figure 1d: projection onto the unemployment theme");
    let (mut ex, _) = oecd_explorer();
    let labor = labor_theme_index(&ex);
    ex.select_theme(labor).expect("mappable");
    let biggest = ex
        .map()
        .expect("map")
        .leaves()
        .iter()
        .max_by_key(|r| r.count)
        .unwrap()
        .id;
    ex.zoom(biggest).expect("zoomable");
    let unemployment = ex
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c.contains("unemployment")))
        .expect("unemployment theme");
    ex.project_theme(unemployment).expect("projectable");
    println!("{}", render_map(ex.map().expect("map")));
    let hl = ex.highlight("country").expect("country column");
    println!("{}", render_highlight(&hl));
    println!("{}", render_status(ex.breadcrumbs(), &ex.sql()));
}

fn f2() {
    header("F2", "Figure 2: dependency graph (unemployment vs health)");
    let (table, _) = oecd_small();
    let table = TableView::from(table);
    let columns = [
        "unemployment_rate",
        "long_term_unemployment",
        "female_unemployment",
        "pct_health_insurance",
        "life_expectancy",
        "health_spending_pct_gdp",
    ];
    let graph = DependencyGraph::build(&table, &columns, &DependencyOptions::default())
        .expect("columns exist");
    println!("{}", graph.render_text(0.10, 16));
    println!("Graphviz export:\n{}", graph.to_dot(0.10));
    // Quantify the two components.
    let mut within = Vec::new();
    let mut across = Vec::new();
    for i in 0..6 {
        for j in (i + 1)..6 {
            if (i < 3) == (j < 3) {
                within.push(graph.weight(i, j));
            } else {
                across.push(graph.weight(i, j));
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "paper: two components (unemployment | health).\n\
         measured: mean within-component NMI {}, cross-component {}.",
        fmt(mean(&within)),
        fmt(mean(&across))
    );
}

fn f3() {
    header(
        "F3",
        "Figure 3: mapping pipeline (preprocess -> cluster -> decision tree)",
    );
    // The figure's toy: hours-worked vs salary, two blobs, tree split on
    // hours ≈ 22.
    let n = 200;
    let mut hours = Vec::with_capacity(n);
    let mut salary = Vec::with_capacity(n);
    for i in 0..n {
        let jitter = ((i * 2654435761usize) % 1000) as f64 / 1000.0;
        if i < n / 2 {
            hours.push(15.0 + 5.0 * jitter);
            salary.push(55.0 + 20.0 * jitter);
        } else {
            hours.push(30.0 + 8.0 * jitter);
            salary.push(25.0 + 15.0 * jitter);
        }
    }
    let table: TableView = TableBuilder::new("toy")
        .column("hours_work", Column::dense_f64(hours))
        .expect("fresh name")
        .column("salary", Column::dense_f64(salary))
        .expect("fresh name")
        .build()
        .expect("consistent")
        .into();

    println!("stage 1 — preprocessing: 200 tuples -> 2-dim normalized vectors");
    let points = as_points(&table, &["hours_work", "salary"]);
    println!("stage 2 — clustering (PAM, k by silhouette):");
    let sel = select_k(&points, &KSelectConfig::default());
    println!(
        "  silhouette profile: {:?}",
        sel.profile
            .iter()
            .map(|&(k, s)| format!("k={k}:{}", fmt(s)))
            .collect::<Vec<_>>()
    );
    println!("  chosen k = {}", sel.k);
    println!("stage 3 — decision tree inference:");
    let tree = DecisionTree::fit(
        &table,
        &["hours_work", "salary"],
        &sel.result.labels,
        &CartConfig::default(),
    )
    .expect("fits");
    for rule in blaeu_tree::leaf_rules(&tree) {
        println!(
            "  leaf {} (cluster {}): {}",
            rule.leaf,
            rule.class,
            rule.description.join(" and ")
        );
    }
    let fidelity = accuracy(
        &tree.predict(&table).expect("same schema"),
        &sel.result.labels,
    );
    println!(
        "paper: the tree splits on 'Hours Work < 22' (approximating PAM).\n\
         measured: k={}, tree fidelity {} (1.0 = lossless description).",
        sel.k,
        fmt(fidelity)
    );
}

fn f4() {
    header("F4", "Figure 4: architecture — concurrent session tier");
    let (table, _) = hollywood(&HollywoodConfig::default()).expect("valid");
    let manager = SessionManager::new();
    let clients = 8;
    let t0 = Instant::now();
    let ids: Vec<_> = (0..clients)
        .map(|_| {
            manager
                .create(table.clone(), ExplorerConfig::default())
                .expect("openable")
        })
        .collect();
    // The session tier fans out on the shared executor; per-session work
    // (CLARA, matrix builds) stays sequential via the nesting guard.
    let outcomes = manager.par_with(&ids, |_, ex| {
        ex.select_theme(0).expect("theme 0");
        let biggest = ex
            .map()
            .expect("map")
            .leaves()
            .iter()
            .max_by_key(|r| r.count)
            .unwrap()
            .id;
        ex.zoom(biggest).expect("zoomable");
        ex.rollback().expect("state to pop");
    });
    for outcome in outcomes {
        outcome.expect("session alive");
    }
    println!(
        "paper: MonetDB + R mapping engine + NodeJS session tier + web client.\n\
         here: blaeu-store + blaeu-{{stats,cluster,tree}} + SessionManager + renderers.\n\
         measured: {clients} concurrent clients, each theme+zoom+rollback, in {}.",
        fmt_duration(t0.elapsed())
    );
    for id in ids {
        manager.close(id).expect("still open");
    }
}

fn f5() {
    header(
        "F5",
        "Figure 5: theme view (terminal stand-in for the web UI)",
    );
    let (ex, _) = oecd_explorer();
    println!("{}", render_themes(ex.theme_set(), 6));
}

fn f6() {
    header("F6", "Figure 6: map view with region info panel");
    let (mut ex, _) = oecd_explorer();
    let labor = labor_theme_index(&ex);
    ex.select_theme(labor).expect("mappable");
    println!("{}", render_map(ex.map().expect("map")));
    let hl = ex
        .highlight("avg_annual_income_kusd")
        .expect("income column");
    println!("{}", render_highlight(&hl));
    println!("{}", render_status(ex.breadcrumbs(), &ex.sql()));
}

fn s1() {
    header("S1", "Scenario 1: Hollywood (900 x 12)");
    let (table, _) = hollywood(&HollywoodConfig::default()).expect("valid");
    let mut ex = Explorer::open(table, ExplorerConfig::default()).expect("openable");
    println!("{}", render_themes(ex.theme_set(), 6));
    let commercial = ex
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c == "profitability"))
        .unwrap_or(0);
    let t0 = Instant::now();
    ex.select_theme(commercial).expect("mappable");
    let map_time = t0.elapsed();
    println!("{}", render_map(ex.map().expect("map")));
    let hl = ex.highlight("profitability").expect("column exists");
    println!("{}", render_highlight(&hl));
    println!("map latency: {}", fmt_duration(map_time));
}

fn s2() {
    header(
        "S2",
        "Scenario 2: Countries & Work (6,823 x 378, full size)",
    );
    let (table, truth) = oecd_full();
    let t0 = Instant::now();
    let mut ex = Explorer::open(table, ExplorerConfig::default()).expect("openable");
    let theme_time = t0.elapsed();
    println!(
        "theme detection over 378 columns: {} -> {} themes",
        fmt_duration(theme_time),
        ex.themes().len()
    );
    let labor = labor_theme_index(&ex);
    let t0 = Instant::now();
    ex.select_theme(labor).expect("mappable");
    let map_time = t0.elapsed();
    println!("{}", render_map(ex.map().expect("map")));
    println!("map over 6,823 rows: {}", fmt_duration(map_time));

    // Compare map regions against the planted labor clusters.
    let labels = region_labels(ex.map().expect("map"), 6823);
    let ari = adjusted_rand_index(&labels, &truth.labels);
    println!(
        "region-vs-planted ARI: {} (labor clusters recovered)",
        fmt(ari)
    );
}

fn s3() {
    header("S3", "Scenario 3: LOFAR at scale (200,000 x ~25)");
    let (table, truth) = lofar(&LofarConfig {
        nrows: 200_000,
        seed: SEED,
    })
    .expect("valid");
    let t0 = Instant::now();
    let mut ex = Explorer::open(table, ExplorerConfig::default()).expect("openable");
    println!("theme detection: {}", fmt_duration(t0.elapsed()));

    let spectrum = ex
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c.starts_with("flux_")))
        .unwrap_or(0);
    let t0 = Instant::now();
    ex.select_theme(spectrum).expect("mappable");
    println!(
        "map over 200k rows (sampled {}): {}",
        ex.map().expect("map").sample_size,
        fmt_duration(t0.elapsed())
    );
    println!("{}", render_map(ex.map().expect("map")));

    let biggest = ex
        .map()
        .expect("map")
        .leaves()
        .iter()
        .max_by_key(|r| r.count)
        .unwrap()
        .id;
    let t0 = Instant::now();
    ex.zoom(biggest).expect("zoomable");
    println!("zoom latency: {}", fmt_duration(t0.elapsed()));

    let map_labels = {
        // Rebuild over the full view for comparison with truth.
        let mut ex2 = Explorer::open(
            lofar(&LofarConfig {
                nrows: 50_000,
                seed: SEED,
            })
            .expect("valid")
            .0,
            ExplorerConfig::default(),
        )
        .expect("openable");
        let spec = ex2
            .themes()
            .iter()
            .position(|t| t.columns.iter().any(|c| c.starts_with("flux_")))
            .unwrap_or(0);
        ex2.select_theme(spec).expect("mappable");
        region_labels(ex2.map().expect("map"), 50_000)
    };
    let truth50 = lofar(&LofarConfig {
        nrows: 50_000,
        seed: SEED,
    })
    .expect("valid")
    .1;
    println!(
        "spectral-map vs planted populations (50k check): NMI {}",
        fmt(label_nmi(
            &map_labels,
            &truth50.labels[..50_000.min(truth50.labels.len())]
        ))
    );
    let _ = truth; // the 200k truth backs the latency run only
}

fn c1() {
    header(
        "C1",
        "Claim: sampling loses little accuracy (maps from samples)",
    );
    let n = 8000;
    let (table, truth) = blobs(n, 3);
    let table = TableView::from(table);
    let columns = blob_columns(&truth);
    println!(
        "{:>8} | {:>12} | {:>12} | {:>10}",
        "sample", "ARI vs truth", "ARI vs full", "latency"
    );
    let full = build_map(
        &table,
        &columns,
        &MapperConfig {
            sample_size: n,
            ..MapperConfig::default()
        },
    )
    .expect("mappable");
    let full_labels = region_labels(&full, n);
    for sample in [250usize, 500, 1000, 2000, 4000, 8000] {
        let t0 = Instant::now();
        let map = build_map(
            &table,
            &columns,
            &MapperConfig {
                sample_size: sample,
                ..MapperConfig::default()
            },
        )
        .expect("mappable");
        let took = t0.elapsed();
        let labels = region_labels(&map, n);
        println!(
            "{sample:>8} | {:>12} | {:>12} | {:>10}",
            fmt(adjusted_rand_index(&labels, &truth.labels)),
            fmt(adjusted_rand_index(&labels, &full_labels)),
            fmt_duration(took)
        );
    }
    println!("paper: \"the loss of accuracy is minimal\" — ARI stays high at small samples.");
}

fn c2() {
    header(
        "C2",
        "Claim: Monte-Carlo silhouette converges to the exact value",
    );
    let (table, truth) = blobs(3000, 3);
    let points = as_points(&table.into(), &blob_columns(&truth));
    let matrix = DistanceMatrix::from_points(&points);
    let exact = silhouette_score(&matrix, &truth.labels);
    println!("exact silhouette: {}", fmt(exact));
    println!(
        "{:>10} | {:>6} | {:>10} | {:>10}",
        "subsamples", "size", "estimate", "abs error"
    );
    for (subsamples, size) in [(1, 64), (2, 128), (4, 256), (8, 512), (16, 1024)] {
        let est = mc_silhouette(
            &points,
            &truth.labels,
            &McSilhouetteConfig {
                subsamples,
                subsample_size: size,
                seed: SEED,
            },
        );
        println!(
            "{subsamples:>10} | {size:>6} | {:>10} | {:>10}",
            fmt(est),
            fmt((est - exact).abs())
        );
    }
}

fn c3() {
    header(
        "C3",
        "Claim: CLARA replaces PAM when data grows (runtime crossover)",
    );
    println!(
        "{:>7} | {:>12} | {:>12} | {:>16}",
        "n", "PAM", "CLARA", "deviation ratio"
    );
    for n in [500usize, 1000, 2000, 4000, 8000] {
        let (table, truth) = blobs(n, 3);
        let points = as_points(&table.into(), &blob_columns(&truth));

        let t0 = Instant::now();
        let matrix = DistanceMatrix::from_points(&points);
        let exact = pam(&matrix, 3, &PamConfig::default());
        let pam_time = t0.elapsed();

        let t0 = Instant::now();
        let approx = clara(&points, 3, &ClaraConfig::default());
        let clara_time = t0.elapsed();

        println!(
            "{n:>7} | {:>12} | {:>12} | {:>16}",
            fmt_duration(pam_time),
            fmt_duration(clara_time),
            fmt(approx.total_deviation / exact.total_deviation)
        );
    }
    println!("paper: CLARA trades a little deviation for near-flat runtime.");
}

fn c4() {
    header(
        "C4",
        "Claim: the silhouette coefficient finds the number of clusters",
    );
    println!(
        "{:>10} | {:>9} | {:>10}",
        "planted k", "chosen k", "silhouette"
    );
    for k in 2..=6 {
        let (table, truth) = blobs(1500, k);
        let points = as_points(&table.into(), &blob_columns(&truth));
        let sel = select_k(
            &points,
            &KSelectConfig {
                k_min: 2,
                k_max: 8,
                mc: None,
                ..KSelectConfig::default()
            },
        );
        println!("{k:>10} | {:>9} | {:>10}", sel.k, fmt(sel.silhouette));
    }
}

fn c5() {
    header(
        "C5",
        "Claim: the decision tree approximates (not copies) the clustering",
    );
    let (table, truth) = blobs(2000, 4);
    let table = TableView::from(table);
    let columns = blob_columns(&truth);
    let points = as_points(&table, &columns);
    let matrix = DistanceMatrix::from_points(&points);
    let clustering = pam(&matrix, 4, &PamConfig::default());
    println!(
        "{:>9} | {:>8} | {:>13} | {:>10}",
        "max depth", "leaves", "fidelity(acc)", "ARI"
    );
    for depth in 1..=6 {
        let tree = DecisionTree::fit(
            &table,
            &columns,
            &clustering.labels,
            &CartConfig {
                max_depth: depth,
                ..CartConfig::default()
            },
        )
        .expect("fits");
        let pred = tree.predict(&table).expect("same schema");
        println!(
            "{depth:>9} | {:>8} | {:>13} | {:>10}",
            tree.n_leaves(),
            fmt(accuracy(&pred, &clustering.labels)),
            fmt(adjusted_rand_index(&pred, &clustering.labels))
        );
    }
    println!(
        "paper: \"the decision tree only approximates the real partitions\" —\n\
              fidelity rises with depth and saturates below 1.0 on hard shapes."
    );
}

fn c6() {
    header(
        "C6",
        "Claim: MI is sensitive to non-linear relationships (vs correlation)",
    );
    let n = 2000;
    let make = |f: &dyn Fn(f64) -> f64| -> TableView {
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) * 6.0 - 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        TableBuilder::new("pair")
            .column("x", Column::dense_f64(xs))
            .expect("fresh")
            .column("y", Column::dense_f64(ys))
            .expect("fresh")
            .build()
            .expect("consistent")
            .into()
    };
    type NamedFn = (&'static str, Box<dyn Fn(f64) -> f64>);
    let cases: Vec<NamedFn> = vec![
        ("linear", Box::new(|x| 2.0 * x + 1.0)),
        ("quadratic", Box::new(|x| x * x)),
        (
            "circularish",
            Box::new(|x| (1.0 - (x / 3.0) * (x / 3.0)).abs().sqrt()),
        ),
        ("sine", Box::new(|x| (3.0 * x).sin())),
        (
            "independent",
            Box::new(|x| ((x * 12345.67).sin() * 43758.5453).fract()),
        ),
    ];
    println!("{:>12} | {:>9} | {:>9}", "dependency", "|Pearson|", "NMI");
    for (name, f) in cases {
        let t = make(&*f);
        let nmi = dependency_matrix(&t, &["x", "y"], &DependencyOptions::default())
            .expect("columns exist")
            .get(0, 1);
        let pearson = dependency_matrix(
            &t,
            &["x", "y"],
            &DependencyOptions {
                measure: DependencyMeasure::PearsonAbs,
                ..DependencyOptions::default()
            },
        )
        .expect("columns exist")
        .get(0, 1);
        println!("{name:>12} | {:>9} | {:>9}", fmt(pearson), fmt(nmi));
    }
    println!("paper: MI catches the quadratic/sine cases where correlation reads ~0.");
}

fn c7() {
    header(
        "C7",
        "Claim: sampling keeps per-action latency interactive as data grows",
    );
    println!(
        "{:>9} | {:>12} | {:>12} | {:>12} | {:>12}",
        "rows", "themes", "map", "zoom", "highlight"
    );
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let (table, truth) = blobs(n, 3);
        let table = TableView::from(table);
        let columns: Vec<String> = blob_columns(&truth)
            .into_iter()
            .map(|s| s.to_owned())
            .collect();
        let cols: Vec<&str> = columns.iter().map(String::as_str).collect();

        let t0 = Instant::now();
        let themes = detect_themes(&table, &ThemeConfig::default()).expect("themes");
        let theme_time = t0.elapsed();
        let _ = themes;

        let t0 = Instant::now();
        let map = build_map(&table, &cols, &MapperConfig::default()).expect("mappable");
        let map_time = t0.elapsed();

        let biggest = map.leaves().iter().max_by_key(|r| r.count).unwrap().id;
        let rows = map.rows_of(biggest).expect("leaf");
        let t0 = Instant::now();
        let view = table.select(&rows).expect("in bounds");
        let _zoomed = build_map(&view, &cols, &MapperConfig::default()).expect("mappable");
        let zoom_time = t0.elapsed();

        let t0 = Instant::now();
        let sub = view
            .select(&(0..view.nrows().min(5000) as u32).collect::<Vec<_>>())
            .expect("in bounds");
        let col = sub.col_by_name(cols[0]).expect("exists");
        let _ = blaeu_stats::describe(&col, 5);
        let highlight_time = t0.elapsed();

        println!(
            "{n:>9} | {:>12} | {:>12} | {:>12} | {:>12}",
            fmt_duration(theme_time),
            fmt_duration(map_time),
            fmt_duration(zoom_time),
            fmt_duration(highlight_time)
        );
    }
    println!(
        "paper: interaction-time clustering of millions of tuples via sampling —\n\
              map/zoom latency is dominated by the fixed-size sample, not n."
    );
}

fn a1() {
    header(
        "A1",
        "Ablation: dependency measure for themes (MI vs Pearson vs Spearman)",
    );
    // Mixed-shape themes: each theme's columns are linear, quadratic and
    // sinusoidal functions of one latent, so only a measure that sees
    // non-linear dependency keeps the theme together.
    let config = PlantedConfig {
        nrows: 900,
        themes: vec![
            ThemeSpec {
                name: "alpha".into(),
                numeric_cols: 6,
                categorical_cols: 0,
                categories: 0,
                shape: ColumnShape::Mixed,
            },
            ThemeSpec {
                name: "beta".into(),
                numeric_cols: 6,
                categorical_cols: 0,
                categories: 0,
                shape: ColumnShape::Mixed,
            },
            ThemeSpec::numeric("straight", 6),
        ],
        cluster_sep: 0.0,
        noise: 0.15,
        seed: SEED,
        ..PlantedConfig::default()
    };
    let (table, truth) = planted(&config).expect("valid");
    let table = TableView::from(table);
    println!("{:>10} | {:>16}", "measure", "theme NMI");
    for (name, measure) in [
        ("NMI", DependencyMeasure::Nmi),
        ("Pearson", DependencyMeasure::PearsonAbs),
        ("Spearman", DependencyMeasure::SpearmanAbs),
    ] {
        let ts = detect_themes(
            &table,
            &ThemeConfig {
                dependency: DependencyOptions {
                    measure,
                    ..DependencyOptions::default()
                },
                ..ThemeConfig::default()
            },
        )
        .expect("detectable");
        let mut det = Vec::new();
        let mut tru = Vec::new();
        for (column, theme) in ts.column_assignments() {
            if let Some(t) = truth.theme_of(&column) {
                det.push(theme);
                tru.push(t);
            }
        }
        println!("{name:>10} | {:>16}", fmt(label_nmi(&det, &tru)));
    }
    println!(
        "paper's rationale: MI \"copes with mixed values and is sensitive to\n\
              non-linear relationships\" — correlation measures fragment the non-linear themes."
    );
}

fn a2() {
    header(
        "A2",
        "Ablation: k-medoids (PAM) vs k-means on skewed/outlier data",
    );
    // Blobs plus 2% far outliers: medoids resist, means get dragged.
    let (table, truth) = blobs(1200, 3);
    let columns = blob_columns(&truth);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for i in 0..table.nrows() {
        let mut row = Vec::new();
        for &c in &columns {
            row.push(
                table
                    .column_by_name(c)
                    .expect("exists")
                    .numeric_at(i)
                    .expect("dense"),
            );
        }
        rows.push(row);
    }
    // Inject outliers.
    let dims = rows[0].len();
    for o in 0..24 {
        rows.push(vec![1e4 + o as f64 * 500.0; dims]);
    }
    let truth_labels: Vec<usize> = truth
        .labels
        .iter()
        .copied()
        .chain(std::iter::repeat_n(0usize, 24))
        .collect();
    let points = blaeu_cluster::Points::new(rows, blaeu_cluster::Metric::Euclidean);

    let km = kmeans(&points, 3, &KMeansConfig::default());
    let pm = clara(&points, 3, &ClaraConfig::default());
    // Score only the genuine rows (ignore the injected outliers).
    let genuine = 1200;
    println!(
        "k-means ARI (with outliers): {}",
        fmt(adjusted_rand_index(
            &km.labels[..genuine],
            &truth_labels[..genuine]
        ))
    );
    println!(
        "PAM/CLARA ARI (with outliers): {}",
        fmt(adjusted_rand_index(
            &pm.labels[..genuine],
            &truth_labels[..genuine]
        ))
    );
    println!("medoids are actual tuples (displayable); means are synthetic points.");
}

fn a3() {
    header(
        "A3",
        "Ablation: silhouette strategy — exact vs Monte-Carlo vs medoid",
    );
    let (table, truth) = blobs(4000, 3);
    let points = as_points(&table.into(), &blob_columns(&truth));

    let t0 = Instant::now();
    let matrix = DistanceMatrix::from_points(&points);
    let exact = silhouette_score(&matrix, &truth.labels);
    let exact_time = t0.elapsed();

    let t0 = Instant::now();
    let mc = mc_silhouette(
        &points,
        &truth.labels,
        &McSilhouetteConfig {
            subsamples: 4,
            subsample_size: 256,
            seed: SEED,
        },
    );
    let mc_time = t0.elapsed();

    let clustering = clara(&points, 3, &ClaraConfig::default());
    let t0 = Instant::now();
    let med = blaeu_cluster::medoid_silhouette(&points, &clustering.medoids, &clustering.labels);
    let med_time = t0.elapsed();

    println!(
        "{:>8} | {:>9} | {:>10} | {:>10}",
        "method", "value", "abs error", "time"
    );
    println!(
        "{:>8} | {:>9} | {:>10} | {:>10}",
        "exact",
        fmt(exact),
        "-",
        fmt_duration(exact_time)
    );
    println!(
        "{:>8} | {:>9} | {:>10} | {:>10}",
        "MC 4x256",
        fmt(mc),
        fmt((mc - exact).abs()),
        fmt_duration(mc_time)
    );
    println!(
        "{:>8} | {:>9} | {:>10} | {:>10}",
        "medoid",
        fmt(med),
        fmt((med - exact).abs()),
        fmt_duration(med_time)
    );
}

fn a4() {
    header(
        "A4",
        "Ablation: graph partitioning algorithm for themes (PAM vs agglomerative)",
    );
    let (table, truth) = planted(&PlantedConfig {
        nrows: 700,
        themes: vec![
            ThemeSpec::numeric("economy", 5),
            ThemeSpec::numeric("health", 5),
            ThemeSpec::numeric("safety", 5),
            ThemeSpec::numeric("housing", 5),
        ],
        cluster_sep: 0.0,
        noise: 0.3,
        seed: SEED,
        ..PlantedConfig::default()
    })
    .expect("valid");
    let columns: Vec<&str> = truth
        .theme_of_column
        .iter()
        .map(|(c, _)| c.as_str())
        .collect();
    let graph = DependencyGraph::build(&table.into(), &columns, &DependencyOptions::default())
        .expect("columns exist");
    let m = graph.len();
    let matrix = DistanceMatrix::from_fn(m, |i, j| (1.0 - graph.weight(i, j)).clamp(0.0, 1.0));
    let truth_labels: Vec<usize> = columns
        .iter()
        .map(|c| truth.theme_of(c).expect("attribute column"))
        .collect();

    let score = |labels: &[usize]| label_nmi(labels, &truth_labels);
    let pam_labels = pam(&matrix, 4, &PamConfig::default()).labels;
    println!("{:>18} | {:>10}", "algorithm", "theme NMI");
    println!("{:>18} | {:>10}", "PAM (paper)", fmt(score(&pam_labels)));
    for (name, linkage) in [
        ("single linkage", blaeu_cluster::Linkage::Single),
        ("complete linkage", blaeu_cluster::Linkage::Complete),
        ("average linkage", blaeu_cluster::Linkage::Average),
    ] {
        let labels = blaeu_cluster::agglomerative(&matrix, linkage).cut(4);
        println!("{name:>18} | {:>10}", fmt(score(&labels)));
    }
    println!(
        "all operate on the same 1−NMI distance; PAM additionally yields medoid\n\
              columns as theme names, which the dendrogram does not."
    );
}

/// Loads the Countries & Work table from `path`: the snapshot format
/// when the extension is `.snap`, CSV otherwise.
///
/// CSV carries no column roles, so the generator's label columns
/// (`region`, `country`) are re-tagged after parsing; the snapshot
/// format preserves roles natively. Both paths must hand the digest a
/// table indistinguishable from the generated one.
fn load_oecd_table(path: &str) -> Table {
    if path.ends_with(".snap") {
        return Table::read_snapshot(path)
            .unwrap_or_else(|e| panic!("cannot read snapshot {path}: {e}"));
    }
    let file = std::fs::File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    let parsed = read_csv(
        "countries_work",
        std::io::BufReader::new(file),
        &CsvOptions::default(),
    )
    .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    let mut builder = TableBuilder::new("countries_work");
    for (field, col) in parsed.schema().fields().iter().zip(parsed.columns()) {
        let role = if field.name == "region" || field.name == "country" {
            ColumnRole::Label
        } else {
            field.role
        };
        builder = builder
            .column_with_role(&field.name, col.clone(), role)
            .expect("fresh names from a parsed header");
    }
    builder.build().expect("parsed columns are consistent")
}

/// Writes the small OECD table under `dir` as both CSV and snapshot, so
/// the two `--table` load paths can be diffed against each other.
fn export_oecd(dir: &str) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
    let (table, _) = oecd_small();
    let csv_path = format!("{dir}/oecd_small.csv");
    let snap_path = format!("{dir}/oecd_small.snap");
    let file = std::fs::File::create(&csv_path)
        .unwrap_or_else(|e| panic!("cannot create {csv_path}: {e}"));
    write_csv(
        &table,
        std::io::BufWriter::new(file),
        &CsvOptions::default(),
    )
    .unwrap_or_else(|e| panic!("cannot write {csv_path}: {e}"));
    table
        .write_snapshot(&snap_path)
        .unwrap_or_else(|e| panic!("cannot write {snap_path}: {e}"));
    println!("wrote {csv_path} and {snap_path}");
}

/// Writes the determinism digest to `path` (see the module docs).
///
/// Every value here must be a pure function of the input data and seeds:
/// f64s are recorded as hex bit patterns so "close enough" can never
/// mask a thread-count-dependent rounding, and nothing derived from
/// wall-clock time or thread identity is allowed in. With `table_source`
/// set, the OECD table is loaded from that file instead of regenerated —
/// the digest must not change.
fn json_digest(path: &str, table_source: Option<&str>) {
    use serde_json::{json, Value};
    let bits = |v: f64| format!("{:016x}", v.to_bits());

    // Themes and the labor map over the small OECD table (F1a/F1b).
    let oecd_table: Table = match table_source {
        Some(src) => load_oecd_table(src),
        None => oecd_small().0,
    };
    let mut ex = Explorer::open(oecd_table.clone(), ExplorerConfig::default()).expect("openable");
    let themes: Vec<Value> = ex
        .themes()
        .iter()
        .map(|t| json!({"name": t.name, "columns": t.columns}))
        .collect();
    let labor = labor_theme_index(&ex);
    let map = ex.select_theme(labor).expect("mappable");
    let regions: Vec<Value> = map
        .leaves()
        .iter()
        .map(|r| {
            json!({
                "id": r.id,
                "cluster": r.cluster,
                "count": r.count,
                "description": r.description,
            })
        })
        .collect();
    let map_digest = json!({
        "columns": map.columns,
        "sample_size": map.sample_size,
        "medoid_rows": map.medoid_rows.clone(),
        "regions": regions,
    });

    // The F2 dependency matrix, cell-exact (sharded pairwise sweep).
    let table = TableView::from(oecd_table);
    let columns = [
        "unemployment_rate",
        "long_term_unemployment",
        "female_unemployment",
        "pct_health_insurance",
        "life_expectancy",
        "health_spending_pct_gdp",
    ];
    let dm =
        dependency_matrix(&table, &columns, &DependencyOptions::default()).expect("columns exist");
    let mut cells = Vec::new();
    for i in 0..columns.len() {
        for j in 0..columns.len() {
            cells.push(bits(dm.get(i, j)));
        }
    }

    // CLARA + whole-dataset assignment over planted blobs (C3's workload).
    let (blob_table, truth) = blobs(1500, 3);
    let points = as_points(&blob_table.into(), &blob_columns(&truth));
    let clustering = clara(&points, 3, &ClaraConfig::default());
    let mut label_histogram = vec![0usize; 3];
    for &label in &clustering.labels {
        label_histogram[label] += 1;
    }
    let (assign_labels, assign_total) = blaeu_cluster::assign_points(&points, &[5, 700, 1400]);
    let assign_histogram = {
        let mut h = vec![0usize; 3];
        for &label in &assign_labels {
            h[label] += 1;
        }
        h
    };

    // Distance matrix over the parallel band path (n >= 256).
    let (small_table, small_truth) = blobs(600, 3);
    let small_points = as_points(&small_table.into(), &blob_columns(&small_truth));
    let matrix = DistanceMatrix::from_points(&small_points);
    let probes: Vec<String> = [
        (0usize, 1usize),
        (0, 599),
        (127, 128),
        (298, 301),
        (597, 599),
    ]
    .iter()
    .map(|&(i, j)| bits(matrix.get(i, j)))
    .collect();

    // Session-tier fan-out: per-session outcomes must not depend on which
    // worker served which session. All four sessions share one table
    // allocation through the zero-copy session path.
    let manager = SessionManager::new();
    let ids: Vec<_> = (0..4)
        .map(|_| {
            manager
                .create_shared(
                    std::sync::Arc::clone(table.table()),
                    ExplorerConfig::default(),
                )
                .expect("openable")
        })
        .collect();
    let session_depths: Vec<usize> = manager
        .par_with(&ids, |_, session| {
            session.select_theme(0).expect("theme 0");
            session.depth()
        })
        .into_iter()
        .map(|r| r.expect("session alive"))
        .collect();

    let digest = json!({
        "themes": themes,
        "labor_map": map_digest,
        "dependency_matrix": json!({"columns": columns, "cell_bits": cells}),
        "clara": json!({
            "medoids": clustering.medoids.clone(),
            "total_deviation_bits": bits(clustering.total_deviation),
            "label_histogram": label_histogram,
            "swaps": clustering.swaps,
            "converged": clustering.converged,
        }),
        "assign_points": json!({
            "total_deviation_bits": bits(assign_total),
            "label_histogram": assign_histogram,
        }),
        "distance_matrix": json!({
            "n": matrix.len(),
            "mean_bits": bits(matrix.mean()),
            "probe_bits": probes,
        }),
        "sessions": json!({"depths": session_depths}),
    });
    let rendered = serde_json::to_string_pretty(&digest).expect("serializable");
    std::fs::write(path, rendered + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote determinism digest to {path}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--export-oecd <dir>` writes the digest table to disk in both
    // formats and exits.
    if let Some(pos) = args.iter().position(|a| a == "--export-oecd") {
        args.remove(pos);
        let dir = if pos < args.len() {
            args.remove(pos)
        } else {
            ".".to_owned()
        };
        export_oecd(&dir);
        return;
    }
    // `--table <path>` redirects the digest's OECD input to a file
    // (CSV or `.snap` snapshot); only meaningful together with `--json`.
    let table_source = args.iter().position(|a| a == "--table").map(|pos| {
        args.remove(pos);
        if pos < args.len() {
            args.remove(pos)
        } else {
            panic!("--table requires a path operand")
        }
    });
    // `--json <path>` is recognized anywhere in the argument list; it
    // consumes its path operand and replaces the experiment run with the
    // determinism digest.
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        let path = if pos < args.len() {
            args.remove(pos)
        } else {
            "figures.json".to_owned()
        };
        json_digest(&path, table_source.as_deref());
        return;
    }
    let all: Vec<(&str, fn())> = vec![
        ("f1a", f1a),
        ("f1b", f1b),
        ("f1c", f1c),
        ("f1d", f1d),
        ("f2", f2),
        ("f3", f3),
        ("f4", f4),
        ("f5", f5),
        ("f6", f6),
        ("s1", s1),
        ("s2", s2),
        ("s3", s3),
        ("c1", c1),
        ("c2", c2),
        ("c3", c3),
        ("c4", c4),
        ("c5", c5),
        ("c6", c6),
        ("c7", c7),
        ("a1", a1),
        ("a2", a2),
        ("a3", a3),
        ("a4", a4),
    ];
    let wanted: Vec<&str> = if args.is_empty() {
        all.iter().map(|&(id, _)| id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let t0 = Instant::now();
    for want in &wanted {
        match all.iter().find(|&&(id, _)| id == *want) {
            Some(&(_, run)) => run(),
            None => eprintln!(
                "unknown experiment {want:?}; known: {}",
                all.iter().map(|&(id, _)| id).collect::<Vec<_>>().join(" ")
            ),
        }
    }
    println!(
        "\nran {} experiment(s) in {}",
        wanted.len(),
        fmt_duration(t0.elapsed())
    );
}
