//! Storage-layer benchmarks: scans, predicate evaluation, gathers,
//! sampling, CSV ingestion. These bound every interactive action
//! (supports C7 in EXPERIMENTS.md).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use blaeu_bench::{blob_columns, blobs, SEED};
use blaeu_store::{
    read_csv_str, uniform_sample, write_csv_string, CsvOptions, MultiScaleSampler, Predicate,
};

fn bench_predicates(c: &mut Criterion) {
    let (table, truth) = blobs(100_000, 3);
    let col = blob_columns(&truth)[0];
    let mut group = c.benchmark_group("store/predicate");
    group.bench_function("numeric_range_100k", |b| {
        b.iter(|| {
            Predicate::range_co(col, -1.0, 1.0)
                .select(black_box(&table))
                .expect("valid predicate")
        })
    });
    group.bench_function("conjunction_100k", |b| {
        let cols = blob_columns(&truth);
        let p = Predicate::And(vec![
            Predicate::ge(cols[0], 0.0),
            Predicate::lt(cols[1], 2.0),
            Predicate::ge(cols[2], -3.0),
        ]);
        b.iter(|| p.select(black_box(&table)).expect("valid predicate"))
    });
    group.finish();
}

fn bench_take(c: &mut Criterion) {
    let (table, _) = blobs(100_000, 3);
    let rows = uniform_sample(100_000, 10_000, SEED);
    c.bench_function("store/take_10k_of_100k", |b| {
        b.iter(|| black_box(&table).take(black_box(&rows)).expect("in bounds"))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/sample");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("multiscale_build", n), &n, |b, &n| {
            b.iter(|| MultiScaleSampler::new(black_box(n), SEED))
        });
        group.bench_with_input(BenchmarkId::new("uniform_2k", n), &n, |b, &n| {
            b.iter(|| uniform_sample(black_box(n), 2000, SEED))
        });
    }
    group.finish();
}

fn bench_csv(c: &mut Criterion) {
    let (table, _) = blobs(5_000, 3);
    let rendered = write_csv_string(&table, &CsvOptions::default()).expect("in-memory");
    c.bench_function("store/csv_parse_5k_rows", |b| {
        b.iter(|| read_csv_str("t", black_box(&rendered), &CsvOptions::default()).expect("valid"))
    });
}

criterion_group!(
    benches,
    bench_predicates,
    bench_take,
    bench_sampling,
    bench_csv
);
criterion_main!(benches);
