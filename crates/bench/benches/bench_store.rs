//! Storage-layer benchmarks: scans, predicate evaluation, gathers,
//! sampling, CSV ingestion. These bound every interactive action
//! (supports C7 in EXPERIMENTS.md).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use blaeu_bench::{blob_columns, blobs, SEED};
use blaeu_store::{
    read_csv_str, read_snapshot_bytes, uniform_sample, write_csv_string, write_snapshot_bytes,
    Bitmap, CsvOptions, MultiScaleSampler, Predicate, Table,
};

fn bench_predicates(c: &mut Criterion) {
    let (table, truth) = blobs(100_000, 3);
    let col = blob_columns(&truth)[0];
    let mut group = c.benchmark_group("store/predicate");
    group.bench_function("numeric_range_100k", |b| {
        b.iter(|| {
            Predicate::range_co(col, -1.0, 1.0)
                .select(black_box(&table))
                .expect("valid predicate")
        })
    });
    group.bench_function("conjunction_100k", |b| {
        let cols = blob_columns(&truth);
        let p = Predicate::And(vec![
            Predicate::ge(cols[0], 0.0),
            Predicate::lt(cols[1], 2.0),
            Predicate::ge(cols[2], -3.0),
        ]);
        b.iter(|| p.select(black_box(&table)).expect("valid predicate"))
    });
    group.finish();
}

fn bench_take(c: &mut Criterion) {
    let (table, _) = blobs(100_000, 3);
    let rows = uniform_sample(100_000, 10_000, SEED);
    c.bench_function("store/take_10k_of_100k", |b| {
        b.iter(|| black_box(&table).take(black_box(&rows)).expect("in bounds"))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/sample");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("multiscale_build", n), &n, |b, &n| {
            b.iter(|| MultiScaleSampler::new(black_box(n), SEED))
        });
        group.bench_with_input(BenchmarkId::new("uniform_2k", n), &n, |b, &n| {
            b.iter(|| uniform_sample(black_box(n), 2000, SEED))
        });
    }
    group.finish();
}

fn bench_csv(c: &mut Criterion) {
    let (table, _) = blobs(5_000, 3);
    let rendered = write_csv_string(&table, &CsvOptions::default()).expect("in-memory");
    c.bench_function("store/csv_parse_5k_rows", |b| {
        b.iter(|| read_csv_str("t", black_box(&rendered), &CsvOptions::default()).expect("valid"))
    });
}

fn bench_snapshot(c: &mut Criterion) {
    // Same 50k-row table through both load paths: parsing the rendered
    // CSV (type inference, float parsing, dictionary building) vs
    // decoding the column snapshot (validated memcpy of column blobs).
    let (table, _) = blobs(50_000, 3);
    let rendered = write_csv_string(&table, &CsvOptions::default()).expect("in-memory");
    let blob = write_snapshot_bytes(&table);
    let mut group = c.benchmark_group("store/snapshot");
    group.sample_size(20);
    group.bench_function("csv_parse_50k", |b| {
        b.iter(|| read_csv_str("t", black_box(&rendered), &CsvOptions::default()).expect("valid"))
    });
    group.bench_function("read_50k", |b| {
        b.iter(|| read_snapshot_bytes(black_box(&blob)).expect("valid"))
    });
    // The file path end to end (page-cache hot): on 64-bit Unix this is
    // the memory-mapped read — decode straight out of the page cache,
    // no intermediate copy of the payload — vs `read_50k`'s pure
    // in-memory decode, isolating what the file layer costs on top.
    let path = std::env::temp_dir().join("blaeu_bench_snapshot.snap");
    table.write_snapshot(&path).expect("writable");
    group.bench_function("file_read_50k", |b| {
        b.iter(|| Table::read_snapshot(black_box(&path)).expect("valid"))
    });
    let _ = std::fs::remove_file(&path);
    group.bench_function("write_50k", |b| {
        b.iter(|| write_snapshot_bytes(black_box(&table)))
    });
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    // Word-wise validity kernels at the 1M-bit scale a large column's
    // null mask reaches. ~43% density with runs, so `iter_ones` exercises
    // both skipping empty words and draining dense ones.
    const N: usize = 1 << 20;
    let bits_a: Vec<bool> = (0..N)
        .map(|i| (i.wrapping_mul(2654435761)) % 7 < 3)
        .collect();
    let bits_b: Vec<bool> = (0..N).map(|i| (i.wrapping_mul(40503)) % 5 < 3).collect();
    let a = Bitmap::from_bools(&bits_a);
    let b = Bitmap::from_bools(&bits_b);
    let mut group = c.benchmark_group("store/bitmap");
    group.bench_function("and_count_1m", |bch| {
        bch.iter(|| black_box(&a).and(black_box(&b)).count_ones())
    });
    group.bench_function("iter_ones_sum_1m", |bch| {
        bch.iter(|| black_box(&a).iter_ones().map(|i| i as u64).sum::<u64>())
    });
    group.bench_function("count_ones_range_1m", |bch| {
        bch.iter(|| black_box(&a).count_ones_range(black_box(1234), black_box(N - 4321)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_predicates,
    bench_take,
    bench_sampling,
    bench_csv,
    bench_snapshot,
    bench_bitmap
);
criterion_main!(benches);
