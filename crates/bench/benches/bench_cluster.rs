//! Clustering benchmarks: PAM vs CLARA scaling (C3), silhouette costs
//! (C2/A3) and k-selection sweeps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use blaeu_bench::{as_points, blob_columns, blobs, SEED};
use blaeu_cluster::{
    agglomerative, clara, mc_silhouette, pam, select_k, silhouette_score, ClaraConfig,
    DistanceMatrix, KSelectConfig, Linkage, McSilhouetteConfig, PamConfig,
};

fn bench_pam(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/pam");
    group.sample_size(10);
    for &n in &[250usize, 500, 1000] {
        let (table, truth) = blobs(n, 3);
        let points = as_points(&table.into(), &blob_columns(&truth));
        let matrix = DistanceMatrix::from_points(&points);
        group.bench_with_input(BenchmarkId::new("k3", n), &matrix, |b, m| {
            b.iter(|| pam(black_box(m), 3, &PamConfig::default()))
        });
    }
    group.finish();
}

fn bench_clara(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/clara");
    group.sample_size(10);
    for &n in &[1000usize, 10_000, 50_000] {
        let (table, truth) = blobs(n, 3);
        let points = as_points(&table.into(), &blob_columns(&truth));
        group.bench_with_input(BenchmarkId::new("k3", n), &points, |b, p| {
            b.iter(|| clara(black_box(p), 3, &ClaraConfig::default()))
        });
    }
    group.finish();
}

fn bench_distance_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/distance_matrix");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2000] {
        let (table, truth) = blobs(n, 3);
        let points = as_points(&table.into(), &blob_columns(&truth));
        group.bench_with_input(BenchmarkId::new("gower", n), &points, |b, p| {
            b.iter(|| DistanceMatrix::from_points(black_box(p)))
        });
    }
    group.finish();
}

fn bench_assign(c: &mut Criterion) {
    // Whole-dataset nearest-medoid sweeps (the step after CLARA samples):
    // bounded by the blocked distance kernel, not by clustering logic.
    let mut group = c.benchmark_group("cluster/assign");
    group.sample_size(10);
    for &n in &[20_000usize, 100_000] {
        let (table, truth) = blobs(n, 3);
        let points = as_points(&table.into(), &blob_columns(&truth));
        let medoids = [5usize, n / 3, 2 * n / 3];
        group.bench_with_input(BenchmarkId::new("k3", n), &points, |b, p| {
            b.iter(|| blaeu_cluster::assign_points(black_box(p), black_box(&medoids)))
        });
    }
    group.finish();
}

fn bench_silhouette(c: &mut Criterion) {
    let (table, truth) = blobs(2000, 3);
    let points = as_points(&table.into(), &blob_columns(&truth));
    let matrix = DistanceMatrix::from_points(&points);
    let labels = &truth.labels;

    let mut group = c.benchmark_group("cluster/silhouette");
    group.sample_size(10);
    group.bench_function("exact_2000", |b| {
        b.iter(|| silhouette_score(black_box(&matrix), black_box(labels)))
    });
    group.bench_function("mc_4x256_of_2000", |b| {
        b.iter(|| {
            mc_silhouette(
                black_box(&points),
                black_box(labels),
                &McSilhouetteConfig {
                    subsamples: 4,
                    subsample_size: 256,
                    seed: SEED,
                },
            )
        })
    });
    group.finish();
}

fn bench_kselect(c: &mut Criterion) {
    let (table, truth) = blobs(1000, 3);
    let points = as_points(&table.into(), &blob_columns(&truth));
    let mut group = c.benchmark_group("cluster/select_k");
    group.sample_size(10);
    group.bench_function("sweep_2_to_6_n1000", |b| {
        b.iter(|| {
            select_k(
                black_box(&points),
                &KSelectConfig {
                    k_min: 2,
                    k_max: 6,
                    ..KSelectConfig::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    // Theme-detection scale: a few hundred "columns" as points.
    let (table, truth) = blobs(300, 3);
    let points = as_points(&table.into(), &blob_columns(&truth));
    let matrix = DistanceMatrix::from_points(&points);
    let mut group = c.benchmark_group("cluster/agglomerative");
    group.sample_size(10);
    for (name, linkage) in [
        ("average", Linkage::Average),
        ("complete", Linkage::Complete),
    ] {
        group.bench_function(format!("{name}_300"), |b| {
            b.iter(|| agglomerative(black_box(&matrix), linkage))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pam,
    bench_clara,
    bench_distance_matrix,
    bench_assign,
    bench_silhouette,
    bench_kselect,
    bench_hierarchical
);
criterion_main!(benches);
