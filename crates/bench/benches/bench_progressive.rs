//! Progressive-analysis benches on the wide 48-column × 50 000-row
//! table: the latency of the coarse level-0 answer, the full refinement
//! ladder run to exactness, and the exact one-shot map it must converge
//! to. The acceptance gap is `first_level` ≥ 10× faster than
//! `exact_map` — progressiveness only earns its complexity if the first
//! answer is interactive where the exact one is not.
//!
//! Refresh the committed baseline with the same thread budget the CI
//! gate uses:
//! `CRITERION_SAVE_BASELINE=$PWD/.github/bench-baseline.json BLAEU_THREADS=8 cargo bench -p blaeu-bench --bench bench_progressive`

use std::sync::Arc;

use blaeu_bench::wide;
use blaeu_core::{Command, ExplorerConfig, Response};
use blaeu_server::{AsyncSessionServer, ServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn server() -> AsyncSessionServer {
    // Cache off: every iteration measures real work, not a memo clone.
    AsyncSessionServer::new(ServerConfig {
        threads: 0,
        queue_capacity: 64,
        cache_capacity: 0,
        ..ServerConfig::default()
    })
}

fn bench_progressive(c: &mut Criterion) {
    let table = Arc::new(wide().0);
    let srv = server();
    let id = srv
        .open_session(Arc::clone(&table), ExplorerConfig::default())
        .expect("session opens");
    srv.request(id, Command::SelectTheme(0)).expect("theme 0");

    let mut group = c.benchmark_group("progressive");
    group.sample_size(10);

    // The plain submit path runs only the coarse level-0 rung (no
    // refinement is scheduled without a delta stream) — exactly the
    // "first answer" latency a client sees.
    group.bench_function("first_level", |b| {
        b.iter(|| {
            let response = srv
                .request(id, Command::MapProgressive)
                .expect("level 0 builds");
            assert!(matches!(response, Response::MapDelta { .. }));
        })
    });

    // The whole ladder, coarse to exact: level 0 from the handle, every
    // refinement rung drained from the delta stream.
    group.bench_function("full_ladder", |b| {
        b.iter(|| {
            let (handle, stream) = srv.submit_progressive(id).expect("submits");
            handle.join().expect("level 0 builds");
            let mut last = None;
            while let Some(result) = stream.next() {
                last = Some(result.expect("rung builds"));
            }
            match last {
                Some(Response::MapDelta { delta, .. }) => assert!(delta.final_level),
                other => panic!("ladder ended without a final rung: {other:?}"),
            }
        })
    });

    // The exact one-shot map the final rung must match bit for bit.
    group.bench_function("exact_map", |b| {
        b.iter(|| srv.request(id, Command::Map).expect("map builds"))
    });
    group.finish();
}

criterion_group!(benches, bench_progressive);
criterion_main!(benches);
