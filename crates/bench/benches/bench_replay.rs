//! Durability benches — what the write-ahead journal costs and what
//! replay buys back.
//!
//! `replay/journal_append` is the per-command journaling overhead on the
//! drain path (`FsyncPolicy::Never`, the default); `replay/recover` is a
//! full restart recovery of one recorded session (read + verify + replay
//! of every command); `replay/wire` replays a recorded two-session
//! corpus over live loopback HTTP, digest-checking every response — the
//! load harness (`replay_load`) in miniature.
//!
//! Refresh the committed baseline with the same thread budget the CI
//! gate uses:
//! `CRITERION_SAVE_BASELINE=$PWD/.github/bench-baseline.json BLAEU_THREADS=8 cargo bench -p blaeu-bench --bench bench_replay`

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use blaeu_bench::replay::{load_corpus, replay_corpus};
use blaeu_core::{Command, ExplorerConfig};
use blaeu_net::{NetConfig, NetServer};
use blaeu_server::{
    AsyncSessionServer, FsyncPolicy, RecordedOutcome, ServerConfig, SessionJournal,
};
use blaeu_store::generate::{hollywood, HollywoodConfig};
use blaeu_store::Table;
use criterion::{criterion_group, criterion_main, Criterion};

fn shared_table() -> Arc<Table> {
    Arc::new(
        hollywood(&HollywoodConfig {
            nrows: 500,
            ..HollywoodConfig::default()
        })
        .expect("generator cannot fail on valid config")
        .0,
    )
}

/// A fresh scratch directory under the system temp dir.
fn scratch(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("blaeu-bench-replay-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The recorded exploration script: theme map, highlight, reads, undo.
fn script() -> Vec<Command> {
    vec![
        Command::Themes,
        Command::SelectTheme(0),
        Command::Highlight("film".into()),
        Command::Depth,
        Command::Rollback,
    ]
}

/// Records `sessions` journaled wire-shape sessions into `dir` (the
/// sessions are deliberately left open — closing would delete the
/// files) and returns when every append has landed.
fn record_corpus(dir: &Path, table: &Arc<Table>, sessions: usize) {
    let engine = AsyncSessionServer::try_new(ServerConfig {
        threads: 0,
        queue_capacity: 64,
        cache_capacity: 64,
        journal_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("journal dir is writable");
    for _ in 0..sessions {
        let id = engine
            .open_named_session("hollywood", Arc::clone(table), ExplorerConfig::default())
            .expect("session opens");
        for cmd in script() {
            engine
                .submit(id, cmd)
                .expect("queue fits the script")
                .join()
                .expect("script commands succeed");
        }
    }
}

fn bench_replay(c: &mut Criterion) {
    let table = shared_table();
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);

    // Per-command journaling cost on the drain path: frame + checksum +
    // buffered write of one command record, no fsync (the default).
    let append_dir = scratch("append");
    let journal = SessionJournal::open(&append_dir, FsyncPolicy::Never).expect("journal opens");
    journal
        .open_session(1, "hollywood", 0)
        .expect("open record writes");
    let outcome = RecordedOutcome::Digest(0xdead_beef_dead_beef);
    group.bench_function("journal_append", |b| {
        b.iter(|| {
            journal.append_command(1, &Command::Depth, &outcome);
            journal.seq_of(1)
        })
    });

    // Restart recovery of one recorded session: scan, verify framing,
    // re-open over the table, re-execute all 5 commands digest-checked.
    let recover_dir = scratch("recover");
    record_corpus(&recover_dir, &table, 1);
    let tables: HashMap<String, Arc<Table>> =
        HashMap::from([("hollywood".to_owned(), Arc::clone(&table))]);
    group.bench_function("recover", |b| {
        b.iter(|| {
            let engine = AsyncSessionServer::try_new(ServerConfig {
                threads: 0,
                queue_capacity: 64,
                cache_capacity: 64,
                journal_dir: Some(recover_dir.clone()),
                ..ServerConfig::default()
            })
            .expect("journal dir is writable");
            let report = engine.recover(&tables).expect("journal configured");
            assert!(report.errors.is_empty(), "{:?}", report.errors);
            assert_eq!(report.replayed, script().len() as u64);
            report.replayed
        })
    });

    // The load harness in miniature: two recorded sessions replayed
    // concurrently over live loopback HTTP, every digest checked.
    let wire_dir = scratch("wire");
    record_corpus(&wire_dir, &table, 2);
    let corpus = load_corpus(&wire_dir).expect("corpus reads");
    assert_eq!(corpus.len(), 2);
    let engine = Arc::new(AsyncSessionServer::new(ServerConfig {
        threads: 0,
        queue_capacity: 64,
        cache_capacity: 64,
        ..ServerConfig::default()
    }));
    let net = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).expect("bind");
    net.register_table("hollywood", Arc::clone(&table));
    let addr = net.local_addr();
    group.bench_function("wire", |b| {
        b.iter(|| {
            let report = replay_corpus(addr, &corpus, 0);
            assert_eq!(report.mismatches, 0, "replay diverged from recording");
            report.commands
        })
    });
    group.finish();
    net.shutdown();

    for dir in [append_dir, recover_dir, wire_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
