//! Mutual-information benchmarks: the cost of building dependency graphs
//! (theme detection's inner loop; supports F1a/S2 latency rows).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use blaeu_bench::oecd_small;
use blaeu_stats::{
    dependency_matrix, discretize, entropy, BinRule, BinStrategy, ContingencyTable,
    DependencyOptions,
};

fn bench_discretize(c: &mut Criterion) {
    let (table, _) = oecd_small();
    let col = table
        .column_by_name("pct_employees_long_hours")
        .expect("exists");
    c.bench_function("mi/discretize_1200_rows", |b| {
        b.iter(|| {
            discretize(
                black_box(col),
                BinStrategy::EqualFrequency,
                BinRule::SqrtCapped,
            )
        })
    });
}

fn bench_pair(c: &mut Criterion) {
    let (table, _) = oecd_small();
    let x = discretize(
        table
            .column_by_name("pct_employees_long_hours")
            .expect("exists"),
        BinStrategy::EqualFrequency,
        BinRule::SqrtCapped,
    );
    let y = discretize(
        table
            .column_by_name("avg_annual_income_kusd")
            .expect("exists"),
        BinStrategy::EqualFrequency,
        BinRule::SqrtCapped,
    );
    c.bench_function("mi/single_pair_1200_rows", |b| {
        b.iter(|| {
            let ct = ContingencyTable::from_codes(black_box(&x), black_box(&y));
            blaeu_stats::normalized_mutual_information(&ct, blaeu_stats::MiNormalization::Sqrt)
        })
    });
    c.bench_function("mi/entropy_1200_rows", |b| {
        b.iter(|| entropy(black_box(&x)))
    });
}

fn bench_matrix(c: &mut Criterion) {
    let (table, _) = oecd_small();
    let table = blaeu_store::TableView::from(table);
    let all: Vec<&str> = table.attribute_columns();
    let mut group = c.benchmark_group("mi/dependency_matrix");
    group.sample_size(10);
    for &m in &[8usize, 16, 36] {
        let cols = &all[..m.min(all.len())];
        group.bench_with_input(BenchmarkId::new("columns", m), &cols, |b, cols| {
            b.iter(|| {
                dependency_matrix(black_box(&table), cols, &DependencyOptions::default())
                    .expect("columns exist")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discretize, bench_pair, bench_matrix);
criterion_main!(benches);
