//! Zero-copy navigation benchmark: a deep zoom chain over a wide table,
//! views vs per-zoom materialization.
//!
//! Blaeu's dominant interaction is recursive zooming; before the
//! `TableView` refactor every zoom gathered a full copy of every column
//! payload. This bench drives a 6-level zoom chain over a deliberately
//! *wide* table (48 float columns), ending with one single-column scan at
//! the deepest level so both variants do identical terminal work:
//!
//! * `view` — each level is `TableView::select` (index re-map, payloads
//!   shared), so cost scales with the selection size, not the table
//!   width;
//! * `materialize` — each level is `Table::take` (the pre-refactor
//!   behaviour), so cost scales with `width × rows` per level.
//!
//! The regression gate keeps both: `view` guards the zero-copy fast path
//! itself, `materialize` documents the gap (≥2× required; in practice an
//! order of magnitude on this shape).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use blaeu_store::{Column, Table, TableBuilder, TableView};

/// Table shape: wide enough that payload copying dominates `take`.
const COLS: usize = 48;
const ROWS: usize = 50_000;
/// Zoom-chain depth (the paper's sessions drill several levels deep).
const DEPTH: usize = 6;

fn wide_table() -> Table {
    let mut builder = TableBuilder::new("wide");
    for c in 0..COLS {
        let data: Vec<f64> = (0..ROWS)
            .map(|r| ((r * 31 + c * 17) % 1009) as f64)
            .collect();
        builder = builder
            .column(format!("c{c}"), Column::dense_f64(data))
            .expect("fresh name");
    }
    builder.build().expect("consistent")
}

/// The rows each zoom level keeps: every other row of the selection.
fn half(n: usize) -> Vec<u32> {
    (0..n as u32).step_by(2).collect()
}

/// Identical terminal work for both variants: scan one column at the
/// deepest level (what a highlight would do after the zooms).
fn scan<C: blaeu_store::ColumnRead>(col: &C) -> f64 {
    let mut acc = 0.0;
    for i in 0..col.len() {
        acc += col.numeric_at(i).unwrap_or(0.0);
    }
    acc
}

fn bench_zoom_chain(c: &mut Criterion) {
    let table = wide_table();
    let view = TableView::from(table.clone());
    let mut group = c.benchmark_group("view_zoom");
    group.sample_size(10);

    group.bench_function("deep6/view", |b| {
        b.iter(|| {
            let mut v = view.clone();
            for _ in 0..DEPTH {
                v = v.select(&half(v.nrows())).expect("in bounds");
            }
            let col = v.col_by_name("c0").expect("exists");
            black_box(scan(&col))
        })
    });

    group.bench_function("deep6/materialize", |b| {
        b.iter(|| {
            // Level 1 gathers from the shared base table (no up-front
            // clone — that would double-count the copying and flatter
            // the view variant); levels 2..DEPTH gather from the
            // previous level, exactly the pre-refactor zoom chain.
            let mut t = table.take(&half(table.nrows())).expect("in bounds");
            for _ in 1..DEPTH {
                t = t.take(&half(t.nrows())).expect("in bounds");
            }
            let col = t.column_by_name("c0").expect("exists");
            black_box(scan(col))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_zoom_chain);
criterion_main!(benches);
