//! Session-server benches — async pipeline vs the synchronous batch
//! fan-out, and the analysis cache's hit/miss latency split.
//!
//! `server_mixed` runs the acceptance workload (8 sessions, half slow
//! re-maps, half fast highlights) through the async server and through
//! the legacy `par_with` batch; `server_cache` measures the same `Map`
//! request against a warm cache (hit: queue + clone overhead only) and
//! against no cache (miss: the full sample → cluster → describe
//! pipeline); `server_queue` pins the pipeline's fixed overhead with a
//! no-work command.
//!
//! Refresh the committed baseline with the same thread budget the CI
//! gate uses:
//! `CRITERION_SAVE_BASELINE=$PWD/.github/bench-baseline.json BLAEU_THREADS=8 cargo bench -p blaeu-bench --bench bench_server`

use std::sync::Arc;

use blaeu_core::{Command, ExplorerConfig, SessionManager};
use blaeu_server::{AsyncSessionServer, ServerConfig};
use blaeu_store::generate::{hollywood, HollywoodConfig};
use blaeu_store::Table;
use criterion::{criterion_group, criterion_main, Criterion};

fn shared_table() -> Arc<Table> {
    Arc::new(
        hollywood(&HollywoodConfig {
            nrows: 500,
            ..HollywoodConfig::default()
        })
        .expect("generator cannot fail on valid config")
        .0,
    )
}

fn async_server(cache_capacity: usize) -> AsyncSessionServer {
    AsyncSessionServer::new(ServerConfig {
        threads: 0,
        queue_capacity: 64,
        cache_capacity,
        ..ServerConfig::default()
    })
}

/// The acceptance mix: 4 slow re-maps + 4 fast highlights across 8
/// sessions, async pipeline vs synchronous batch fan-out.
fn bench_mixed(c: &mut Criterion) {
    let table = shared_table();

    let srv = async_server(0); // cache off: every Map recomputes
    let ids: Vec<u64> = (0..8)
        .map(|_| {
            srv.open_session(Arc::clone(&table), ExplorerConfig::default())
                .expect("session opens")
        })
        .collect();
    for &id in &ids {
        srv.request(id, Command::SelectTheme(0))
            .expect("theme maps");
    }

    let mut group = c.benchmark_group("server_mixed");
    group.sample_size(10);
    group.bench_function("async8", |b| {
        b.iter(|| {
            let slow: Vec<_> = ids[..4]
                .iter()
                .map(|&id| srv.submit(id, Command::Map).expect("submit"))
                .collect();
            let fast: Vec<_> = ids[4..]
                .iter()
                .map(|&id| {
                    srv.submit(id, Command::Highlight("film".into()))
                        .expect("submit")
                })
                .collect();
            for handle in fast {
                handle.join().expect("highlight");
            }
            for handle in slow {
                handle.join().expect("map");
            }
        })
    });

    let manager = SessionManager::new();
    let sync_ids: Vec<u64> = (0..8)
        .map(|_| {
            manager
                .create_shared(Arc::clone(&table), ExplorerConfig::default())
                .expect("session opens")
        })
        .collect();
    for &id in &sync_ids {
        manager
            .with(id, |ex| ex.select_theme(0).map(|_| ()))
            .expect("session exists")
            .expect("theme maps");
    }
    group.bench_function("sync_par_with", |b| {
        b.iter(|| {
            let results = manager.par_with(&sync_ids, |id, ex| {
                let idx = sync_ids.iter().position(|&s| s == id).expect("own id");
                let command = if idx < 4 {
                    Command::Map
                } else {
                    Command::Highlight("film".into())
                };
                ex.execute(&command).expect("command runs")
            });
            for result in results {
                result.expect("session exists");
            }
        })
    });
    group.finish();
}

/// Cache hit vs miss latency for the same `Map` request.
fn bench_cache(c: &mut Criterion) {
    let table = shared_table();
    let mut group = c.benchmark_group("server_cache");
    group.sample_size(10);

    let cached = async_server(64);
    let warm_id = cached
        .open_session(Arc::clone(&table), ExplorerConfig::default())
        .expect("session opens");
    cached
        .request(warm_id, Command::SelectTheme(0))
        .expect("warms the cache");
    group.bench_function("map/hit", |b| {
        b.iter(|| {
            cached
                .request(warm_id, Command::Map)
                .expect("cached re-map")
        })
    });

    let uncached = async_server(0);
    let cold_id = uncached
        .open_session(Arc::clone(&table), ExplorerConfig::default())
        .expect("session opens");
    uncached
        .request(cold_id, Command::SelectTheme(0))
        .expect("theme maps");
    group.bench_function("map/miss", |b| {
        b.iter(|| {
            uncached
                .request(cold_id, Command::Map)
                .expect("full rebuild")
        })
    });
    group.finish();
}

/// Fixed pipeline overhead: submit → queue → execute(no-op) → join.
fn bench_queue(c: &mut Criterion) {
    let table = shared_table();
    let srv = async_server(0);
    let id = srv
        .open_session(Arc::clone(&table), ExplorerConfig::default())
        .expect("session opens");
    let mut group = c.benchmark_group("server_queue");
    group.sample_size(30);
    group.bench_function("submit_join/depth", |b| {
        b.iter(|| srv.request(id, Command::Depth).expect("no-op command"))
    });
    group.finish();
}

criterion_group!(benches, bench_mixed, bench_cache, bench_queue);
criterion_main!(benches);
