//! Transport benches — what the wire costs over the engine it fronts.
//!
//! `net_request/parse` isolates HTTP request parsing (in-memory, no
//! sockets); `net_request/direct` is the in-process
//! `AsyncSessionServer::submit` → `join` floor for a no-work command;
//! `net_request/roundtrip` is the same command as a full loopback HTTP
//! round-trip on a keep-alive connection — the difference between the
//! last two is the transport's real dispatch overhead (framing + routing
//! + socket hops).
//!
//! Refresh the committed baseline with the same thread budget the CI
//! gate uses:
//! `CRITERION_SAVE_BASELINE=$PWD/.github/bench-baseline.json BLAEU_THREADS=8 cargo bench -p blaeu-bench --bench bench_net`

use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use blaeu_core::{Command, ExplorerConfig};
use blaeu_net::http::read_request;
use blaeu_net::{NetConfig, NetServer};
use blaeu_server::{AsyncSessionServer, ServerConfig};
use blaeu_store::generate::{hollywood, HollywoodConfig};
use blaeu_store::Table;
use criterion::{criterion_group, criterion_main, Criterion};

fn shared_table() -> Arc<Table> {
    Arc::new(
        hollywood(&HollywoodConfig {
            nrows: 500,
            ..HollywoodConfig::default()
        })
        .expect("generator cannot fail on valid config")
        .0,
    )
}

fn engine() -> Arc<AsyncSessionServer> {
    Arc::new(AsyncSessionServer::new(ServerConfig {
        threads: 0,
        queue_capacity: 64,
        cache_capacity: 0,
        ..ServerConfig::default()
    }))
}

fn bench_net(c: &mut Criterion) {
    let table = shared_table();
    let mut group = c.benchmark_group("net_request");

    // Pure request parsing: a representative POST with a command body.
    let body = br#"{"cmd": "select_theme", "theme": 0}"#;
    let mut request = format!(
        "POST /sessions/1/commands HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    group.bench_function("parse", |b| {
        b.iter(|| {
            let mut sink = Vec::new();
            let parsed = read_request(
                &mut Cursor::new(&request[..]),
                &mut sink,
                1 << 20,
                blaeu_net::http::Deadline::none(),
            )
            .expect("valid request")
            .expect("not EOF");
            assert_eq!(parsed.body.len(), body.len());
            parsed
        })
    });

    // In-process floor: submit → join of a no-work command.
    let direct = engine();
    let direct_id = direct
        .open_session(Arc::clone(&table), ExplorerConfig::default())
        .expect("session opens");
    group.bench_function("direct", |b| {
        b.iter(|| {
            direct
                .request(direct_id, Command::Depth)
                .expect("command runs")
        })
    });

    // Full loopback HTTP round-trip of the same command, keep-alive.
    let net = NetServer::bind("127.0.0.1:0", engine(), NetConfig::default()).expect("bind");
    net.register_table("hollywood", Arc::clone(&table));
    let addr = net.local_addr();
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |path: &str, payload: &str| -> String {
        write!(
            writer,
            "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        )
        .expect("write");
        writer.flush().expect("flush");
        let mut line = String::new();
        let mut content_length = 0usize;
        reader.read_line(&mut line).expect("status");
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header");
            if header.trim().is_empty() {
                break;
            }
            if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        String::from_utf8(body).expect("utf8")
    };
    let opened = roundtrip("/sessions", r#"{"table": "hollywood"}"#);
    let wire_id: u64 = opened
        .split("\"session\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("no session id in {opened:?}"));
    let command_path = format!("/sessions/{wire_id}/commands");
    group.bench_function("roundtrip", |b| {
        b.iter(|| {
            let body = roundtrip(&command_path, r#"{"cmd": "depth"}"#);
            assert!(body.contains("depth"), "{body}");
            body.len()
        })
    });
    group.finish();
    net.shutdown();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
