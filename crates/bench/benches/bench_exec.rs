//! Executor smoke benches — the workloads behind the CI regression gate.
//!
//! `calibrate/spin` is a fixed scalar workload the criterion shim uses to
//! normalize a committed baseline across machines of different speeds.
//! `exec_skew` pits the adaptive steal grain against the legacy
//! one-chunk-per-thread split on a quadratic-cost workload (the shape of
//! condensed-matrix bands); the remaining groups cover the sharded hot
//! paths (distance-matrix bands, CLARA whole-dataset assignment, the
//! pairwise dependency sweep).
//!
//! Refresh the committed baseline with the same thread budget the CI
//! gate uses (the budget changes what the parallel benches measure):
//! `CRITERION_SAVE_BASELINE=$PWD/.github/bench-baseline.json BLAEU_THREADS=8 cargo bench -p blaeu-bench --bench bench_exec`

use blaeu_bench::{as_points, blob_columns, blobs, oecd_small};
use blaeu_cluster::{assign_points, DistanceMatrix};
use blaeu_stats::{dependency_matrix, DependencyOptions};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Deterministic spin kernel; `units` scales the work linearly. The
/// xorshift steps form a serial dependency chain, so the loop cannot be
/// closed-formed or vectorized away.
fn spin(units: usize) -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..units {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

fn calibrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibrate");
    group.sample_size(30);
    group.bench_function("spin", |b| b.iter(|| spin(black_box(2_000_000))));
    group.finish();
}

fn bench_skew(c: &mut Criterion) {
    // Item i costs O(i²): under a static n/threads split the last chunk
    // carries ~1 − ((t−1)/t)³ of the total work (≈ 33% at t = 8), so the
    // adaptive steal grain wins whenever more than one core is available.
    let n = 512usize;
    let cost: Vec<usize> = (0..n).map(|i| i * i / 4 + 500).collect();
    let threads = blaeu_exec::thread_budget();
    let mut group = c.benchmark_group("exec_skew");
    group.sample_size(30);
    group.bench_function("par_map/adaptive", |b| {
        b.iter(|| blaeu_exec::par_map_grained(&cost, 0, 0, |_, &units| spin(units)))
    });
    group.bench_function("par_map/static", |b| {
        b.iter(|| {
            // The pre-work-stealing layout: one contiguous chunk per worker.
            blaeu_exec::par_map_grained(&cost, 0, n.div_ceil(threads), |_, &units| spin(units))
        })
    });
    group.finish();
}

fn bench_matrix(c: &mut Criterion) {
    let (table, truth) = blobs(1500, 3);
    let points = as_points(&table.into(), &blob_columns(&truth));
    let mut group = c.benchmark_group("exec_matrix");
    group.sample_size(30);
    group.bench_function("from_points/1500", |b| {
        b.iter(|| DistanceMatrix::from_points(black_box(&points)))
    });
    group.finish();
}

fn bench_assign(c: &mut Criterion) {
    let (table, truth) = blobs(20_000, 3);
    let points = as_points(&table.into(), &blob_columns(&truth));
    let medoids = [10usize, 7_000, 14_000];
    let mut group = c.benchmark_group("exec_assign");
    group.sample_size(30);
    group.bench_function("assign_points/20000", |b| {
        b.iter(|| assign_points(black_box(&points), black_box(&medoids)))
    });
    group.finish();
}

fn bench_mi_sweep(c: &mut Criterion) {
    let (table, _) = oecd_small();
    let table = blaeu_store::TableView::from(table);
    let columns: Vec<&str> = table.schema().names();
    let mut group = c.benchmark_group("exec_mi");
    group.sample_size(30);
    group.bench_function("dependency_matrix/36", |b| {
        b.iter(|| dependency_matrix(&table, &columns, &DependencyOptions::default()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    calibrate,
    bench_skew,
    bench_matrix,
    bench_assign,
    bench_mi_sweep
);
criterion_main!(benches);
