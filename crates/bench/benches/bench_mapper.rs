//! End-to-end pipeline benchmarks: preprocessing, theme detection, map
//! construction and the explorer's per-action latency (C7's backing
//! measurements and the S1–S3 latency rows).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use blaeu_bench::{blob_columns, blobs, oecd_small};
use blaeu_core::{
    build_map, detect_themes, preprocess, Explorer, ExplorerConfig, MapperConfig, PreprocessConfig,
    ThemeConfig,
};

fn bench_preprocess(c: &mut Criterion) {
    let (table, _) = oecd_small();
    let table = blaeu_store::TableView::from(table);
    let columns: Vec<&str> = table.attribute_columns();
    c.bench_function("mapper/preprocess_1200x36", |b| {
        b.iter(|| {
            preprocess(
                black_box(&table),
                black_box(&columns),
                &PreprocessConfig::default(),
            )
            .expect("columns exist")
        })
    });
}

fn bench_themes(c: &mut Criterion) {
    let (table, _) = oecd_small();
    let table = blaeu_store::TableView::from(table);
    let mut group = c.benchmark_group("mapper/detect_themes");
    group.sample_size(10);
    group.bench_function("oecd_1200x36", |b| {
        b.iter(|| detect_themes(black_box(&table), &ThemeConfig::default()).expect("themes"))
    });
    group.finish();
}

fn bench_build_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper/build_map");
    group.sample_size(10);
    for &n in &[2_000usize, 20_000, 200_000] {
        let (table, truth) = blobs(n, 3);
        let table = blaeu_store::TableView::from(table);
        let columns = blob_columns(&truth);
        group.bench_with_input(BenchmarkId::new("sample2000", n), &n, |b, _| {
            b.iter(|| {
                build_map(
                    black_box(&table),
                    black_box(&columns),
                    &MapperConfig::default(),
                )
                .expect("mappable")
            })
        });
    }
    group.finish();
}

fn bench_explorer_actions(c: &mut Criterion) {
    let (table, _) = oecd_small();
    let mut group = c.benchmark_group("mapper/explorer");
    group.sample_size(10);
    group.bench_function("select_theme", |b| {
        b.iter_batched(
            || Explorer::open(table.clone(), ExplorerConfig::default()).expect("openable"),
            |mut ex| {
                ex.select_theme(0).expect("theme exists");
                ex
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("zoom", |b| {
        b.iter_batched(
            || {
                let mut ex =
                    Explorer::open(table.clone(), ExplorerConfig::default()).expect("openable");
                ex.select_theme(0).expect("theme exists");
                let biggest = ex
                    .map()
                    .expect("map")
                    .leaves()
                    .iter()
                    .max_by_key(|r| r.count)
                    .unwrap()
                    .id;
                (ex, biggest)
            },
            |(mut ex, region)| {
                ex.zoom(region).expect("zoomable");
                ex
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("highlight", |b| {
        let mut ex = Explorer::open(table.clone(), ExplorerConfig::default()).expect("openable");
        ex.select_theme(0).expect("theme exists");
        b.iter(|| ex.highlight("country").expect("column exists"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_preprocess,
    bench_themes,
    bench_build_map,
    bench_explorer_actions
);
criterion_main!(benches);
