//! CART benchmarks: fitting map trees and routing rows through them
//! (the per-zoom costs of the mapping pipeline's third stage).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use blaeu_bench::{as_points, blob_columns, blobs};
use blaeu_cluster::{pam, DistanceMatrix, PamConfig};
use blaeu_tree::{alpha_path, leaf_rules, prune, CartConfig, DecisionTree};

fn fitted(n: usize) -> (blaeu_store::TableView, Vec<usize>, DecisionTree) {
    let (table, truth) = blobs(n, 4);
    let table = blaeu_store::TableView::from(table);
    let columns = blob_columns(&truth);
    let points = as_points(&table, &columns);
    let matrix = DistanceMatrix::from_points(&points);
    let labels = pam(&matrix, 4, &PamConfig::default()).labels;
    let tree = DecisionTree::fit(&table, &columns, &labels, &CartConfig::default()).expect("fits");
    (table, labels, tree)
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree/fit");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let (table, truth) = blobs(n, 4);
        let table = blaeu_store::TableView::from(table);
        let columns = blob_columns(&truth);
        let points = as_points(&table, &columns);
        let matrix = DistanceMatrix::from_points(&points);
        let labels = pam(&matrix, 4, &PamConfig::default()).labels;
        group.bench_with_input(BenchmarkId::new("6cols_k4", n), &n, |b, _| {
            b.iter(|| {
                DecisionTree::fit(
                    black_box(&table),
                    black_box(&columns),
                    black_box(&labels),
                    &CartConfig::default(),
                )
                .expect("fits")
            })
        });
    }
    group.finish();
}

fn bench_predict_and_route(c: &mut Criterion) {
    let (table, _, tree) = fitted(2000);
    let (big, _) = blobs(100_000, 4);
    let big = blaeu_store::TableView::from(big);
    let mut group = c.benchmark_group("tree/route");
    group.sample_size(10);
    group.bench_function("predict_2000", |b| {
        b.iter(|| tree.predict(black_box(&table)).expect("same schema"))
    });
    group.bench_function("leaf_assignments_100k", |b| {
        b.iter(|| tree.leaf_assignments(black_box(&big)).expect("same schema"))
    });
    group.finish();
}

fn bench_rules(c: &mut Criterion) {
    let (_, _, tree) = fitted(2000);
    c.bench_function("tree/leaf_rules", |b| {
        b.iter(|| leaf_rules(black_box(&tree)))
    });
}

fn bench_prune(c: &mut Criterion) {
    let (_, _, tree) = fitted(2000);
    let mut group = c.benchmark_group("tree/prune");
    group.bench_function("cost_complexity", |b| {
        b.iter(|| prune(black_box(&tree), 1.0))
    });
    group.bench_function("alpha_path", |b| b.iter(|| alpha_path(black_box(&tree))));
    group.finish();
}

criterion_group!(
    benches,
    bench_fit,
    bench_predict_and_route,
    bench_rules,
    bench_prune
);
criterion_main!(benches);
