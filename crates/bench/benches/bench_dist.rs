//! Distributed fan-out benches — what shipping shards over loopback
//! costs against the in-process floor.
//!
//! `dist_fanout/depmatrix/inproc` runs the dependency-matrix sketch
//! start-to-finish in one process (the floor). `dist_fanout/depmatrix/
//! workersN` fans the same op out over N loopback worker servers via a
//! [`ShardCoordinator`] — same table replica in every worker, real
//! sockets, shard-order merge. The spread between the two is the
//! transport + merge overhead; the trend across N is the fan-out
//! scaling on one machine (which loopback caps — the point is that the
//! wall-clock *shrinks or holds* as workers are added, not socket
//! perfection).
//!
//! The workload is a 2 000-row, 24-numeric-column planted table: 276
//! column pairs dominate the cost, the shape where fan-out pays.
//!
//! Refresh the committed baseline with the same thread budget the CI
//! gate uses:
//! `CRITERION_SAVE_BASELINE=$PWD/.github/bench-baseline.json BLAEU_THREADS=8 cargo bench -p blaeu-bench --bench bench_dist`

use std::sync::Arc;

use blaeu_bench::SEED;
use blaeu_core::{Response, SketchOp};
use blaeu_net::{NetConfig, NetServer};
use blaeu_server::{AsyncSessionServer, ServerConfig, ShardCoordinator};
use blaeu_store::generate::{planted, PlantedConfig, ThemeSpec};
use blaeu_store::{Table, TableView};
use criterion::{criterion_group, criterion_main, Criterion};

const TABLE: &str = "planted";

/// 24 numeric columns: the dependency matrix walks 276 pairs, enough
/// work per shard range that a fan-out is not pure socket overhead.
fn fixture() -> (Arc<Table>, Vec<String>) {
    let (table, truth) = planted(&PlantedConfig {
        name: TABLE.to_owned(),
        nrows: 2000,
        themes: vec![ThemeSpec::numeric("m", 24)],
        clusters: 4,
        cluster_sep: 5.0,
        cluster_weights: Vec::new(),
        noise: 0.4,
        missing_rate: 0.0,
        seed: SEED,
    })
    .expect("generator cannot fail on valid config");
    let columns = truth
        .theme_of_column
        .iter()
        .map(|(c, _)| c.clone())
        .collect();
    (Arc::new(table), columns)
}

fn worker(table: &Arc<Table>) -> NetServer {
    let engine = Arc::new(AsyncSessionServer::new(ServerConfig::default()));
    let net = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).expect("loopback bind");
    net.register_table(TABLE, Arc::clone(table));
    net
}

fn bench_dist(c: &mut Criterion) {
    let (table, columns) = fixture();
    let op = SketchOp::DepMatrix { columns };
    let nrows = table.nrows();

    let mut group = c.benchmark_group("dist_fanout");
    group.sample_size(10);

    // The in-process floor: plan + full-range run + finalize.
    let view = TableView::new(Arc::clone(&table));
    let reference = {
        let plan = op.plan(&view).expect("fixture columns exist");
        let partial = plan.run_range(0..plan.spec().shard_count(), 0);
        Response::Sketch(Box::new(op.finalize(partial).expect("well-formed"))).digest()
    };
    group.bench_function("depmatrix/inproc", |b| {
        b.iter(|| {
            let plan = op.plan(&view).expect("fixture columns exist");
            let partial = plan.run_range(0..plan.spec().shard_count(), 0);
            Response::Sketch(Box::new(op.finalize(partial).expect("well-formed"))).digest()
        })
    });

    for workers in [1usize, 2, 4] {
        let nets: Vec<NetServer> = (0..workers).map(|_| worker(&table)).collect();
        let coordinator =
            ShardCoordinator::new(nets.iter().map(|n| n.local_addr().to_string()).collect());
        group.bench_function(format!("depmatrix/workers{workers}"), |b| {
            b.iter(|| {
                let digest = coordinator
                    .run(TABLE, &op, nrows)
                    .expect("fan-out succeeds")
                    .digest();
                assert_eq!(digest, reference, "fan-out must stay bit-identical");
                digest
            })
        });
        for net in nets {
            net.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dist);
criterion_main!(benches);
