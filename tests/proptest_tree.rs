//! Property-based tests for CART and rule extraction.

use proptest::prelude::*;

use blaeu::store::{Column, TableBuilder, TableView};
use blaeu::tree::{leaf_rules, CartConfig, DecisionTree};

/// Builds a numeric table plus labels derived from noisy thresholds, so
/// trees have real structure to find.
fn dataset_strategy() -> impl Strategy<Value = (TableView, Vec<usize>)> {
    (
        prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 12..120),
        -50.0f64..50.0,
    )
        .prop_map(|(rows, threshold)| {
            let labels: Vec<usize> = rows
                .iter()
                .map(|&(x, y)| usize::from(x + 0.2 * y > threshold))
                .collect();
            let t = TableBuilder::new("prop")
                .column("x", Column::dense_f64(rows.iter().map(|r| r.0).collect()))
                .unwrap()
                .column("y", Column::dense_f64(rows.iter().map(|r| r.1).collect()))
                .unwrap()
                .build()
                .unwrap();
            (t.into(), labels)
        })
}

fn loose_config() -> CartConfig {
    CartConfig {
        min_samples_split: 4,
        min_samples_leaf: 2,
        min_leaf_fraction: 0.0,
        ..CartConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn leaves_partition_rows((table, labels) in dataset_strategy()) {
        let tree = DecisionTree::fit(&table, &["x", "y"], &labels, &loose_config()).unwrap();
        let assign = tree.leaf_assignments(&table).unwrap();
        prop_assert_eq!(assign.len(), table.nrows());
        prop_assert!(assign.iter().all(|&a| a < tree.n_leaves()));
        // Counts per leaf match the stored training counts.
        let rules = leaf_rules(&tree);
        for rule in &rules {
            let routed = assign.iter().filter(|&&a| a == rule.leaf).count();
            prop_assert_eq!(routed, rule.n(), "leaf {} count mismatch", rule.leaf);
        }
    }

    #[test]
    fn rules_reselect_routed_rows((table, labels) in dataset_strategy()) {
        // On NULL-free data, predicate evaluation and tree routing agree.
        let tree = DecisionTree::fit(&table, &["x", "y"], &labels, &loose_config()).unwrap();
        let assign = tree.leaf_assignments(&table).unwrap();
        for rule in leaf_rules(&tree) {
            let selected = rule.predicate.select_view(&table).unwrap();
            let routed: Vec<u32> = assign
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == rule.leaf)
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(selected, routed, "leaf {}", rule.leaf);
        }
    }

    #[test]
    fn prediction_matches_leaf_majority((table, labels) in dataset_strategy()) {
        let tree = DecisionTree::fit(&table, &["x", "y"], &labels, &loose_config()).unwrap();
        let pred = tree.predict(&table).unwrap();
        let assign = tree.leaf_assignments(&table).unwrap();
        let rules = leaf_rules(&tree);
        for (i, (&p, &leaf)) in pred.iter().zip(&assign).enumerate() {
            prop_assert_eq!(p, rules[leaf].class, "row {}", i);
        }
    }

    #[test]
    fn depth_and_leaf_bounds_respected(
        (table, labels) in dataset_strategy(),
        max_depth in 1usize..5,
    ) {
        let config = CartConfig {
            max_depth,
            ..loose_config()
        };
        let tree = DecisionTree::fit(&table, &["x", "y"], &labels, &config).unwrap();
        prop_assert!(tree.depth() <= max_depth);
        prop_assert!(tree.n_leaves() <= 1 << max_depth);
    }

    #[test]
    fn training_accuracy_beats_majority_baseline((table, labels) in dataset_strategy()) {
        let tree = DecisionTree::fit(&table, &["x", "y"], &labels, &loose_config()).unwrap();
        let pred = tree.predict(&table).unwrap();
        let acc = blaeu::tree::accuracy(&pred, &labels);
        let ones = labels.iter().filter(|&&l| l == 1).count();
        let majority = ones.max(labels.len() - ones) as f64 / labels.len() as f64;
        prop_assert!(acc + 1e-9 >= majority, "acc {acc} < baseline {majority}");
    }

    #[test]
    fn fit_is_deterministic((table, labels) in dataset_strategy()) {
        let a = DecisionTree::fit(&table, &["x", "y"], &labels, &loose_config()).unwrap();
        let b = DecisionTree::fit(&table, &["x", "y"], &labels, &loose_config()).unwrap();
        prop_assert_eq!(a, b);
    }
}
