//! Property tests for the command wire surface: every valid command
//! survives a text round-trip bit-for-bit, and *no* mutated, truncated or
//! adversarial wire body can do anything worse than return a typed
//! [`BlaeuError`] — the contract the network transport's 400-path relies
//! on.

use proptest::prelude::*;

use blaeu::core::{BlaeuError, Command};

/// A lowercase identifier of bounded length — the shape of real column
/// names on the wire.
fn ident(seed: u64, len: usize) -> String {
    let alphabet = b"abcdefghijklmnopqrstuvwxyz_";
    let mut s = String::new();
    let mut state = seed | 1;
    for _ in 0..len.max(1) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        s.push(alphabet[(state >> 33) as usize % alphabet.len()] as char);
    }
    s
}

/// Strategy over every command variant, with representative payloads.
fn command_strategy() -> impl Strategy<Value = Command> {
    (0usize..14, any::<u64>(), 1usize..24, 0usize..4096).prop_map(|(variant, seed, len, number)| {
        match variant {
            0 => Command::SelectTheme(number),
            1 => Command::Zoom(number),
            2 => Command::Map,
            3 => Command::Project(
                (0..(number % 8))
                    .map(|i| ident(seed.wrapping_add(i as u64), len))
                    .collect(),
            ),
            4 => Command::ProjectTheme(number),
            5 => Command::Highlight(ident(seed, len)),
            6 => Command::Scatter {
                x: ident(seed, len),
                y: ident(seed.wrapping_add(1), len),
                bins: number,
            },
            7 => Command::RegionDetail {
                region: number,
                sample_rows: number / 2,
            },
            8 => Command::Rollback,
            9 => Command::RollbackTo(number),
            10 => Command::Themes,
            11 => Command::Sql,
            12 => Command::Breadcrumbs,
            _ => Command::Depth,
        }
    })
}

proptest! {
    /// Serialize → text → parse → deserialize is the identity for every
    /// command the engine can express.
    #[test]
    fn wire_round_trip_is_identity(cmd in command_strategy()) {
        let text = serde_json::to_string(&cmd.to_json()).unwrap();
        let back = Command::from_json_str(&text).unwrap();
        prop_assert_eq!(back, cmd);
    }

    /// Every strict prefix of a valid wire body is invalid JSON (the
    /// closing brace is load-bearing), and the parser reports it as a
    /// typed error — truncated uploads can never half-apply.
    #[test]
    fn truncated_wire_bodies_error(cmd in command_strategy(), cut_seed in any::<u64>()) {
        let text = serde_json::to_string(&cmd.to_json()).unwrap();
        for i in 0..8u64 {
            let cut = 1 + (cut_seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15)) as usize)
                % (text.len() - 1);
            let truncated = &text[..cut];
            prop_assert!(
                matches!(Command::from_json_str(truncated), Err(BlaeuError::Invalid(_))),
                "accepted truncation {:?}", truncated
            );
        }
    }

    /// Byte-level mutations either still parse to a valid command or fail
    /// with a typed error — never a panic. (A flipped digit can legally
    /// produce a different valid command; what must not happen is a
    /// crash.)
    #[test]
    fn mutated_wire_bodies_never_panic(cmd in command_strategy(), mutation in any::<u64>()) {
        let text = serde_json::to_string(&cmd.to_json()).unwrap();
        let mut bytes = text.clone().into_bytes();
        let at = (mutation as usize) % bytes.len();
        let garble = b"{}[]\",:0x\\\0\x7f";
        bytes[at] = garble[(mutation >> 32) as usize % garble.len()];
        // Any outcome but a panic is acceptable; exercise both the lossy
        // and strict entry points.
        match String::from_utf8(bytes) {
            Ok(s) => {
                let _ = Command::from_json_str(&s);
            }
            Err(e) => {
                let _ = Command::from_json_str(&String::from_utf8_lossy(e.as_bytes()));
            }
        }
    }

    /// Structurally hostile values — wrong top-level types, absurd
    /// numbers, deep nesting in the wrong places — are all typed errors.
    #[test]
    fn hostile_shapes_are_typed_errors(n in any::<u64>(), depth in 2usize..600) {
        // 20+ digits: beyond u64, so the parser stores an f64 the index
        // reader must refuse to truncate.
        let huge_number = format!("{{\"cmd\": \"zoom\", \"region\": {}99999999999999999999}}", n % 1000);
        prop_assert!(Command::from_json_str(&huge_number).is_err());
        let float_index = format!("{{\"cmd\": \"zoom\", \"region\": {}.5}}", n % 1000);
        prop_assert!(Command::from_json_str(&float_index).is_err());
        let mut nested = String::from("{\"cmd\": \"project\", \"columns\": ");
        for _ in 0..depth {
            nested.push('[');
        }
        nested.push_str("\"c\"");
        for _ in 0..depth {
            nested.push(']');
        }
        nested.push('}');
        // Under the parser depth cap this is well-formed JSON but the
        // wrong shape; over it, a parse error. Either way: typed Err.
        prop_assert!(matches!(
            Command::from_json_str(&nested),
            Err(BlaeuError::Invalid(_))
        ));
    }
}
