//! Claim C1 (§3): "After each zoom, Blaeu only takes a few thousand
//! samples from the database. Our experiments reveal that the loss of
//! accuracy is minimal." — Maps computed on samples must agree with maps
//! computed on the full data, and with the planted ground truth.

use blaeu::prelude::*;

/// Region labels for every view row, derived from a map.
fn region_labels(map: &DataMap, nrows: usize) -> Vec<usize> {
    let mut labels = vec![0usize; nrows];
    for leaf in map.leaves() {
        for row in map.rows_of(leaf.id).unwrap() {
            labels[row as usize] = leaf.cluster;
        }
    }
    labels
}

#[test]
fn sampled_maps_match_planted_truth() {
    let (table, truth) = planted(&PlantedConfig {
        nrows: 6000,
        clusters: 3,
        cluster_sep: 5.0,
        ..PlantedConfig::default()
    })
    .unwrap();
    let columns: Vec<&str> = truth
        .theme_of_column
        .iter()
        .filter(|(_, t)| *t == 0)
        .map(|(c, _)| c.as_str())
        .collect();

    let table = blaeu::store::TableView::from(table);
    let mut last_ari = 0.0;
    for &sample_size in &[250usize, 1000, 4000] {
        let map = build_map(
            &table,
            &columns,
            &MapperConfig {
                sample_size,
                ..MapperConfig::default()
            },
        )
        .unwrap();
        let ari = adjusted_rand_index(&region_labels(&map, 6000), &truth.labels);
        assert!(
            ari > 0.75,
            "sample {sample_size}: ARI vs truth {ari} too low"
        );
        last_ari = ari;
    }
    assert!(
        last_ari > 0.85,
        "large samples should be near-perfect: {last_ari}"
    );
}

#[test]
fn sampled_map_agrees_with_full_map() {
    let (table, truth) = planted(&PlantedConfig {
        nrows: 3000,
        clusters: 3,
        cluster_sep: 5.0,
        ..PlantedConfig::default()
    })
    .unwrap();
    let columns: Vec<&str> = truth
        .theme_of_column
        .iter()
        .filter(|(_, t)| *t == 0)
        .map(|(c, _)| c.as_str())
        .collect();

    let table = blaeu::store::TableView::from(table);
    let full = build_map(
        &table,
        &columns,
        &MapperConfig {
            sample_size: 3000, // no subsampling
            ..MapperConfig::default()
        },
    )
    .unwrap();
    let sampled = build_map(
        &table,
        &columns,
        &MapperConfig {
            sample_size: 500,
            ..MapperConfig::default()
        },
    )
    .unwrap();

    let ari = adjusted_rand_index(&region_labels(&full, 3000), &region_labels(&sampled, 3000));
    assert!(
        ari > 0.8,
        "sampled map should reproduce the full-data map, ARI {ari}"
    );
    assert_eq!(full.k, sampled.k, "same number of clusters found");
}

#[test]
fn multiscale_sampling_makes_zoom_refinement_stable() {
    // The nested property: with one seed, growing the sample only adds
    // rows. A map built at 500 and rebuilt at 1000 sees a superset.
    use blaeu::store::MultiScaleSampler;
    let sampler = MultiScaleSampler::new(10_000, 7);
    let small: std::collections::HashSet<u32> = sampler.sample(500).into_iter().collect();
    let large: std::collections::HashSet<u32> = sampler.sample(1000).into_iter().collect();
    assert!(small.is_subset(&large));
}

#[test]
fn silhouette_estimate_tracks_sample_size() {
    // Monte-Carlo silhouette on progressively bigger subsamples converges
    // toward the exact value (C2's shape, asserted coarsely here; the
    // bench prints the full curve).
    use blaeu::cluster::{mc_silhouette, McSilhouetteConfig};

    let (table, truth) = planted(&PlantedConfig {
        nrows: 1500,
        clusters: 3,
        cluster_sep: 5.0,
        ..PlantedConfig::default()
    })
    .unwrap();
    let columns: Vec<&str> = truth
        .theme_of_column
        .iter()
        .map(|(c, _)| c.as_str())
        .collect();
    let features = blaeu::core::preprocess(
        &table.into(),
        &columns,
        &blaeu::core::PreprocessConfig::default(),
    )
    .unwrap();
    let points = features.into_points(blaeu::core::MetricChoice::Gower);
    let matrix = DistanceMatrix::from_points(&points);
    let exact = silhouette_score(&matrix, &truth.labels);

    let err_small = (mc_silhouette(
        &points,
        &truth.labels,
        &McSilhouetteConfig {
            subsamples: 1,
            subsample_size: 40,
            seed: 5,
        },
    ) - exact)
        .abs();
    let err_large = (mc_silhouette(
        &points,
        &truth.labels,
        &McSilhouetteConfig {
            subsamples: 8,
            subsample_size: 400,
            seed: 5,
        },
    ) - exact)
        .abs();
    assert!(
        err_large <= err_small + 0.02,
        "more MC effort should not hurt: small-err {err_small}, large-err {err_large}"
    );
    assert!(
        err_large < 0.08,
        "large MC estimate should be close: {err_large}"
    );
}
