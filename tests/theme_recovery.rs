//! Theme detection quality across generators, plus the A1 ablation:
//! mutual information vs linear correlation as the dependency measure
//! (the paper chose MI because it is "sensitive to non-linear
//! relationships").

use blaeu::prelude::*;
use blaeu::store::generate::ColumnShape;
use blaeu::store::generate::ThemeSpec;

/// NMI between detected and planted column-theme assignments.
fn theme_recovery_nmi(detected: &ThemeSet, truth: &blaeu::store::generate::PlantedTruth) -> f64 {
    let assignments = detected.column_assignments();
    let mut det = Vec::new();
    let mut tru = Vec::new();
    for (column, theme) in &assignments {
        if let Some(t) = truth.theme_of(column) {
            det.push(*theme);
            tru.push(t);
        }
    }
    label_nmi(&det, &tru)
}

#[test]
fn linear_themes_fully_recovered() {
    let (table, truth) = planted(&PlantedConfig {
        nrows: 600,
        themes: vec![
            ThemeSpec::numeric("economy", 5),
            ThemeSpec::numeric("health", 5),
            ThemeSpec::numeric("safety", 5),
            ThemeSpec::numeric("housing", 5),
        ],
        cluster_sep: 0.0,
        noise: 0.3,
        ..PlantedConfig::default()
    })
    .unwrap();
    let ts = detect_themes(&table.into(), &ThemeConfig::default()).unwrap();
    let nmi = theme_recovery_nmi(&ts, &truth);
    assert!(nmi > 0.95, "theme recovery NMI {nmi}");
    assert_eq!(ts.themes.len(), 4);
}

#[test]
fn mixed_type_themes_recovered() {
    let (table, truth) = planted(&PlantedConfig {
        nrows: 700,
        themes: vec![
            ThemeSpec {
                name: "demo".into(),
                numeric_cols: 3,
                categorical_cols: 2,
                categories: 4,
                shape: ColumnShape::Linear,
            },
            ThemeSpec {
                name: "econ".into(),
                numeric_cols: 3,
                categorical_cols: 2,
                categories: 3,
                shape: ColumnShape::Linear,
            },
        ],
        cluster_sep: 0.0,
        noise: 0.25,
        ..PlantedConfig::default()
    })
    .unwrap();
    let ts = detect_themes(&table.into(), &ThemeConfig::default()).unwrap();
    let nmi = theme_recovery_nmi(&ts, &truth);
    assert!(nmi > 0.8, "mixed-type theme recovery NMI {nmi}");
}

#[test]
fn ablation_mi_beats_pearson_on_nonlinear_themes() {
    // Mixed-shape themes: within one theme, columns are linear, quadratic
    // and sinusoidal functions of the same latent. MI sees them as one
    // dependent group; linear correlation fragments them (a quadratic
    // column has |Pearson| ≈ 0 against a linear sibling).
    let config = PlantedConfig {
        nrows: 800,
        themes: vec![
            ThemeSpec {
                name: "alpha".into(),
                numeric_cols: 6,
                categorical_cols: 0,
                categories: 0,
                shape: ColumnShape::Mixed,
            },
            ThemeSpec {
                name: "beta".into(),
                numeric_cols: 6,
                categorical_cols: 0,
                categories: 0,
                shape: ColumnShape::Mixed,
            },
        ],
        cluster_sep: 0.0,
        noise: 0.15,
        ..PlantedConfig::default()
    };
    let (table, truth) = planted(&config).unwrap();
    let table = blaeu::store::TableView::from(table);

    let with_measure = |measure: DependencyMeasure| {
        let ts = detect_themes(
            &table,
            &ThemeConfig {
                dependency: DependencyOptions {
                    measure,
                    ..DependencyOptions::default()
                },
                ..ThemeConfig::default()
            },
        )
        .unwrap();
        theme_recovery_nmi(&ts, &truth)
    };

    let nmi_mi = with_measure(DependencyMeasure::Nmi);
    let nmi_pearson = with_measure(DependencyMeasure::PearsonAbs);
    assert!(
        nmi_mi > nmi_pearson + 0.1,
        "MI ({nmi_mi}) should beat Pearson ({nmi_pearson}) on non-linear themes"
    );
    assert!(nmi_mi > 0.7, "MI recovery too weak: {nmi_mi}");
}

#[test]
fn oecd_headline_indicators_group_correctly() {
    let (table, _) = oecd(&OecdConfig {
        nrows: 900,
        ncols: 30,
        missing_rate: 0.0,
        ..OecdConfig::default()
    })
    .unwrap();
    let ts = detect_themes(&table.into(), &ThemeConfig::default()).unwrap();

    // The three unemployment indicators must share a theme (Figure 2's
    // left component), and the three health indicators another (right
    // component).
    let unemployment = ts.theme_of("unemployment_rate").expect("assigned");
    assert!(unemployment
        .columns
        .iter()
        .any(|c| c == "long_term_unemployment"));
    assert!(unemployment
        .columns
        .iter()
        .any(|c| c == "female_unemployment"));

    let health = ts.theme_of("life_expectancy").expect("assigned");
    assert!(health.columns.iter().any(|c| c == "pct_health_insurance"));
    assert!(
        !health.columns.iter().any(|c| c == "unemployment_rate"),
        "unemployment and health are distinct components (Figure 2)"
    );
}

#[test]
fn dependency_graph_edges_respect_planted_structure() {
    let (table, truth) = planted(&PlantedConfig {
        nrows: 500,
        cluster_sep: 0.0,
        ..PlantedConfig::default()
    })
    .unwrap();
    let columns: Vec<&str> = truth
        .theme_of_column
        .iter()
        .map(|(c, _)| c.as_str())
        .collect();
    let graph =
        DependencyGraph::build(&table.into(), &columns, &DependencyOptions::default()).unwrap();

    // Average within-theme weight must dominate cross-theme weight.
    let mut within = Vec::new();
    let mut across = Vec::new();
    for i in 0..graph.len() {
        for j in (i + 1)..graph.len() {
            let ti = truth.theme_of(&graph.vertices()[i]).unwrap();
            let tj = truth.theme_of(&graph.vertices()[j]).unwrap();
            if ti == tj {
                within.push(graph.weight(i, j));
            } else {
                across.push(graph.weight(i, j));
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&within) > 2.0 * mean(&across),
        "within {} vs across {}",
        mean(&within),
        mean(&across)
    );
}
