//! Property tests for the distributed sketch tier: across random
//! tables, random shard-range groupings, and thread budgets {1, 8},
//! merging range partials in shard order is bit-identical to the
//! single-process full-range run — including through a JSON wire
//! round-trip mid-merge — and the merge is shard-order-associative
//! (grouping does not matter as long as order is preserved).

use proptest::prelude::*;

use blaeu::core::{SketchOp, SketchPartial};
use blaeu::store::{Column, TableBuilder, TableView};

/// Builds a mixed-type table: `x` dense numeric (never constant — the
/// index jitter keeps preprocessing away from degenerate all-equal
/// columns proptest shrinking loves), `m` numeric with nulls, `g`
/// categorical.
fn table_view(xs: &[f64], opts: &[Option<f64>], labels: &[u8]) -> (TableView, usize) {
    let n = xs.len().min(opts.len()).min(labels.len());
    let x: Vec<f64> = xs[..n]
        .iter()
        .enumerate()
        .map(|(i, v)| v + i as f64 * 1e-3)
        .collect();
    let g: Vec<String> = labels[..n].iter().map(|l| format!("g{}", l % 5)).collect();
    let view: TableView = TableBuilder::new("t")
        .column("x", Column::dense_f64(x))
        .unwrap()
        .column("m", Column::from_f64s(opts[..n].iter().copied()))
        .unwrap()
        .column("g", Column::from_strs(g.iter().map(|s| Some(s.as_str()))))
        .unwrap()
        .build()
        .unwrap()
        .into();
    (view, n)
}

/// One op per mergeable analysis family, sized to the table.
fn ops(n: usize) -> Vec<SketchOp> {
    vec![
        SketchOp::DepMatrix {
            columns: vec!["x".into(), "m".into(), "g".into()],
        },
        SketchOp::Describe {
            column: "m".into(),
            top_k: 4,
        },
        SketchOp::Describe {
            column: "g".into(),
            top_k: 3,
        },
        SketchOp::Histogram {
            column: "m".into(),
            bins: 8,
        },
        SketchOp::Histogram {
            column: "g".into(),
            bins: 3,
        },
        SketchOp::ClaraAssign {
            columns: vec!["x".into(), "g".into()],
            medoids: vec![0, n / 2],
        },
    ]
}

/// Turns raw cut points into a sorted, deduplicated shard-boundary
/// list `0 = b_0 < … < b_k = shard_count` — a random contiguous
/// grouping of the shard space.
fn boundaries(cuts: &[usize], shard_count: usize) -> Vec<usize> {
    let mut b: Vec<usize> = cuts.iter().map(|c| c % (shard_count + 1)).collect();
    b.push(0);
    b.push(shard_count);
    b.sort_unstable();
    b.dedup();
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant, fuzzed: any contiguous grouping of the
    /// shard space, run at any thread budget, merged in shard order —
    /// with every group partial round-tripped through its wire JSON —
    /// equals the full single-process run bit for bit.
    #[test]
    fn grouped_merge_bit_identical_to_full_run(
        xs in prop::collection::vec(-1e3f64..1e3, 40..160),
        opts in prop::collection::vec(prop::option::of(-1e3f64..1e3), 40..160),
        labels in prop::collection::vec(0u8..5, 40..160),
        cuts in prop::collection::vec(0usize..64, 0..5),
        threads_pick in 0usize..2,
    ) {
        let (view, n) = table_view(&xs, &opts, &labels);
        let threads = [1usize, 8][threads_pick];
        for op in ops(n) {
            let plan = op.plan(&view).expect("columns exist");
            let shard_count = plan.spec().shard_count();
            let full = plan.run_range(0..shard_count, 1);
            let b = boundaries(&cuts, shard_count);

            // Run each group (at the sampled thread budget), ship it
            // through JSON, merge in shard order.
            let mut merged: Option<SketchPartial> = None;
            for pair in b.windows(2) {
                let part = plan.run_range(pair[0]..pair[1], threads);
                let wire = serde_json::to_string(&part.to_json())
                    .expect("serialization is infallible");
                let back = SketchPartial::from_json(
                    &serde_json::from_str(&wire).expect("own JSON parses"),
                ).expect("own partial parses");
                prop_assert_eq!(
                    format!("{back:?}"), format!("{part:?}"),
                    "wire round-trip must be lossless"
                );
                match &mut merged {
                    None => merged = Some(back),
                    Some(acc) => acc.merge(back).expect("same op, same layout"),
                }
            }
            let merged = merged.expect("at least one group");
            prop_assert_eq!(
                format!("{merged:?}"), format!("{full:?}"),
                "op {:?}: grouped merge diverged (threads {})", op, threads
            );
        }
    }

    /// Shard-order associativity: merging `(ab)c` and `a(bc)` agree, so
    /// a coordinator may pre-merge any contiguous prefix of worker
    /// partials without changing the result.
    #[test]
    fn merge_is_shard_order_associative(
        xs in prop::collection::vec(-1e2f64..1e2, 40..120),
        opts in prop::collection::vec(prop::option::of(-1e2f64..1e2), 40..120),
        labels in prop::collection::vec(0u8..5, 40..120),
        cut_a in 0usize..32,
        cut_b in 0usize..32,
    ) {
        let (view, n) = table_view(&xs, &opts, &labels);
        for op in ops(n) {
            let plan = op.plan(&view).expect("columns exist");
            let count = plan.spec().shard_count();
            let mut cuts = [cut_a % (count + 1), cut_b % (count + 1)];
            cuts.sort_unstable();
            let (i, j) = (cuts[0], cuts[1]);
            let a = plan.run_range(0..i, 1);
            let b = plan.run_range(i..j, 1);
            let c = plan.run_range(j..count, 1);

            let mut left = a.clone();
            left.merge(b.clone()).expect("compatible");
            left.merge(c.clone()).expect("compatible");

            let mut right_tail = b;
            right_tail.merge(c).expect("compatible");
            let mut right = a;
            right.merge(right_tail).expect("compatible");

            prop_assert_eq!(
                format!("{left:?}"), format!("{right:?}"),
                "op {:?}: (ab)c != a(bc) at cuts {}..{}", op, i, j
            );
        }
    }
}
