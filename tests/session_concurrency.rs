//! Stress tests for the session tier: concurrent clients, interleaved
//! lifecycles, rollback under concurrency.

use std::sync::Arc;

use blaeu::prelude::*;

fn table() -> Table {
    hollywood(&HollywoodConfig {
        nrows: 400,
        ..HollywoodConfig::default()
    })
    .unwrap()
    .0
}

#[test]
fn many_clients_explore_concurrently() {
    let manager = SessionManager::new();
    let base = table();
    let ids: Vec<_> = (0..6)
        .map(|_| {
            manager
                .create(base.clone(), ExplorerConfig::default())
                .unwrap()
        })
        .collect();

    let outcomes = manager.par_with(&ids, |_, ex| {
        for round in 0..2 {
            ex.select_theme(round % ex.themes().len()).unwrap();
            let biggest = ex
                .map()
                .unwrap()
                .leaves()
                .iter()
                .max_by_key(|r| r.count)
                .unwrap()
                .id;
            ex.zoom(biggest).unwrap();
            ex.highlight("film").unwrap();
            ex.rollback().unwrap();
            ex.rollback().unwrap();
        }
    });
    for outcome in outcomes {
        outcome.unwrap();
    }

    // All sessions end back at their initial state.
    for &id in &ids {
        assert_eq!(manager.with(id, |ex| ex.depth()).unwrap(), 1);
    }
    assert_eq!(manager.len(), 6);
}

#[test]
fn create_and_close_interleaved_with_use() {
    let manager = Arc::new(SessionManager::new());
    let base = table();

    std::thread::scope(|scope| {
        // Churner thread: creates and closes sessions.
        {
            let manager = Arc::clone(&manager);
            let base = base.clone();
            scope.spawn(move || {
                for _ in 0..5 {
                    let id = manager
                        .create(base.clone(), ExplorerConfig::default())
                        .unwrap();
                    manager.close(id).unwrap();
                }
            });
        }
        // Worker thread: uses its own stable session throughout.
        {
            let manager = Arc::clone(&manager);
            let base = base.clone();
            scope.spawn(move || {
                let id = manager
                    .create(base.clone(), ExplorerConfig::default())
                    .unwrap();
                for _ in 0..3 {
                    manager
                        .with(id, |ex| {
                            ex.select_theme(0).unwrap();
                            ex.rollback().unwrap();
                        })
                        .unwrap();
                }
                manager.close(id).unwrap();
            });
        }
    });
    assert!(manager.is_empty());
}

#[test]
fn closed_session_rejected_cleanly() {
    let manager = SessionManager::new();
    let id = manager.create(table(), ExplorerConfig::default()).unwrap();
    manager.close(id).unwrap();
    let err = manager.with(id, |_| ()).unwrap_err();
    assert!(matches!(err, BlaeuError::UnknownSession(_)));
}

#[test]
fn session_state_survives_between_calls() {
    let manager = SessionManager::new();
    let id = manager.create(table(), ExplorerConfig::default()).unwrap();

    manager
        .with(id, |ex| {
            ex.select_theme(0).unwrap();
        })
        .unwrap();
    // A later call sees the selected theme's map.
    let (depth, has_map) = manager
        .with(id, |ex| (ex.depth(), ex.map().is_ok()))
        .unwrap();
    assert_eq!(depth, 2);
    assert!(has_map);
}
