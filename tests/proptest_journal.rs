//! Property tests for the durable-session contract: ANY random command
//! stream, journaled and then recovered after a simulated crash,
//! replays bit-identically — at engine pool sizes 1 and 8, cache on and
//! off — and a recovered server continues exactly where a never-crashed
//! one would. Corruption cases (flipped byte, torn tail, garbage head)
//! must recover the valid prefix with a typed error, never panic or
//! replay wrong state.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use blaeu::prelude::*;
use blaeu::server::{read_journal, RecoveryError};

/// A unique scratch directory per call (removed by the caller).
fn scratch() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "blaeu-proptest-journal-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn shared_table() -> Arc<Table> {
    Arc::new(
        hollywood(&HollywoodConfig {
            nrows: 300,
            ..HollywoodConfig::default()
        })
        .unwrap()
        .0,
    )
}

fn tables(table: &Arc<Table>) -> HashMap<String, Arc<Table>> {
    HashMap::from([("hollywood".to_owned(), Arc::clone(table))])
}

fn engine(dir: Option<&PathBuf>, threads: usize, cache: usize) -> AsyncSessionServer {
    AsyncSessionServer::try_new(ServerConfig {
        threads,
        queue_capacity: 64,
        cache_capacity: cache,
        journal_dir: dir.cloned(),
        ..ServerConfig::default()
    })
    .expect("journal dir is writable")
}

/// Strategy over short random command streams. Some commands will fail
/// (zoom with no map, rollback at depth 1) — that is the point: error
/// outcomes are journaled and must replay as the same error kind.
fn stream_strategy() -> impl Strategy<Value = Vec<Command>> {
    prop::collection::vec((0usize..8, 0usize..3), 1..8).prop_map(|picks| {
        picks
            .into_iter()
            .map(|(variant, n)| match variant {
                0 => Command::Themes,
                1 => Command::SelectTheme(n % 2),
                2 => Command::Highlight("film".into()),
                3 => Command::Zoom(n),
                4 => Command::Rollback,
                5 => Command::Depth,
                6 => Command::Sql,
                _ => Command::Breadcrumbs,
            })
            .collect()
    })
}

/// Runs `stream` on a journal-less engine and returns the outcome
/// stream (digest on success, error kind on failure).
fn reference_outcomes(
    table: &Arc<Table>,
    threads: usize,
    cache: usize,
    stream: &[Command],
    trailer: &[Command],
) -> Vec<Result<u64, &'static str>> {
    let server = engine(None, threads, cache);
    let id = server
        .open_session(Arc::clone(table), ExplorerConfig::default())
        .unwrap();
    stream
        .iter()
        .chain(trailer)
        .map(|cmd| match server.request(id, cmd.clone()) {
            Ok(response) => Ok(response.digest()),
            Err(error) => Err(error.kind()),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: journal → crash → recover replays every
    /// command bit-identically (recovery digest-checks each record), and
    /// the recovered session CONTINUES identically to a never-crashed
    /// server — same digests for post-recovery commands, whatever the
    /// pool size, cache on or off.
    #[test]
    fn recovery_is_bit_identical_across_pools_and_cache_modes(stream in stream_strategy()) {
        let table = shared_table();
        let trailer = [Command::Depth, Command::Sql, Command::Themes];
        for threads in [1usize, 8] {
            for cache in [0usize, 64] {
                let expected = reference_outcomes(&table, threads, cache, &stream, &trailer);
                let dir = scratch();

                // Run the stream journaled, then "crash" (drop, no close).
                let first = engine(Some(&dir), threads, cache);
                let id = first
                    .open_named_session("hollywood", Arc::clone(&table), ExplorerConfig::default())
                    .unwrap();
                let mut observed: Vec<Result<u64, &'static str>> = stream
                    .iter()
                    .map(|cmd| match first.request(id, cmd.clone()) {
                        Ok(response) => Ok(response.digest()),
                        Err(error) => Err(error.kind()),
                    })
                    .collect();
                drop(first);

                // Recover on a fresh engine over the same directory.
                let second = engine(Some(&dir), threads, cache);
                let report = second.recover(&tables(&table)).unwrap();
                prop_assert!(report.errors.is_empty(), "{:?}", report.errors);
                prop_assert_eq!(&report.sessions, &vec![id]);
                prop_assert_eq!(report.replayed, stream.len() as u64);

                // The recovered session continues exactly where the
                // reference (never-crashed) run would.
                for cmd in &trailer {
                    observed.push(match second.request(id, cmd.clone()) {
                        Ok(response) => Ok(response.digest()),
                        Err(error) => Err(error.kind()),
                    });
                }
                prop_assert_eq!(
                    &observed, &expected,
                    "diverged at threads={} cache={}", threads, cache
                );
                drop(second);
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }

    /// Corruption cases: a flipped payload byte and a torn tail both
    /// recover exactly the valid prefix with a typed error; a garbage
    /// head recovers nothing, renames the file aside, and still reports
    /// a typed error. Never a panic, never wrong state.
    #[test]
    fn corrupted_journals_recover_the_valid_prefix(stream in stream_strategy(), damage in any::<u64>()) {
        let table = shared_table();
        let dir = scratch();
        let first = engine(Some(&dir), 2, 0);
        let id = first
            .open_named_session("hollywood", Arc::clone(&table), ExplorerConfig::default())
            .unwrap();
        for cmd in &stream {
            let _ = first.request(id, cmd.clone());
        }
        drop(first);

        let path = blaeu::server::journal_path(&dir, id);
        let pristine = std::fs::read(&path).unwrap();
        let clean = read_journal(&path).unwrap();
        prop_assert!(clean.defect.is_none());
        let records = clean.records.len(); // open + commands

        match damage % 3 {
            0 => {
                // Flip one byte inside the LAST record's payload: every
                // earlier record must survive, the last must not.
                let start = clean.record_ends[records - 2] as usize;
                let mut bytes = pristine.clone();
                // Skip frame header + space, land in the payload.
                let at = start + 29 + (damage as usize % 8);
                bytes[at] ^= 0x01;
                std::fs::write(&path, &bytes).unwrap();

                let second = engine(Some(&dir), 2, 0);
                let report = second.recover(&tables(&table)).unwrap();
                prop_assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
                prop_assert!(matches!(
                    report.errors[0],
                    RecoveryError::TruncatedTail { session, valid_records, .. }
                        if session == id && valid_records == records - 1
                ), "{:?}", report.errors);
                prop_assert_eq!(report.replayed, stream.len() as u64 - 1);
                // The file was physically truncated to the valid prefix.
                let len = std::fs::metadata(&path).unwrap().len();
                prop_assert_eq!(len, clean.record_ends[records - 2]);
            }
            1 => {
                // Tear mid-record (a crash mid-write): same contract.
                let keep = clean.record_ends[records - 2] as usize;
                let cut = keep + 1 + (damage as usize % (pristine.len() - keep - 1).max(1));
                std::fs::write(&path, &pristine[..cut]).unwrap();

                let second = engine(Some(&dir), 2, 0);
                let report = second.recover(&tables(&table)).unwrap();
                prop_assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
                prop_assert!(matches!(
                    report.errors[0],
                    RecoveryError::TruncatedTail { session, .. } if session == id
                ), "{:?}", report.errors);
                // Replays some prefix; the session is live and usable.
                prop_assert!(report.replayed <= stream.len() as u64);
                let second_depth = second.request(id, Command::Depth);
                prop_assert!(second_depth.is_ok());
            }
            _ => {
                // Garbage head: nothing recoverable; the file is moved
                // aside so a later restart does not trip on it again.
                std::fs::write(&path, b"not a journal at all\n").unwrap();
                let second = engine(Some(&dir), 2, 0);
                let report = second.recover(&tables(&table)).unwrap();
                prop_assert!(matches!(
                    report.errors[0],
                    RecoveryError::CorruptHead { session, .. } if session == id
                ), "{:?}", report.errors);
                prop_assert!(report.sessions.is_empty());
                prop_assert!(!path.exists(), "corrupt head must be moved aside");
                prop_assert!(path.with_extension("jnl.corrupt").exists());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
