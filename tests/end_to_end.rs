//! End-to-end exploration cycles over the three demo datasets (§4.2),
//! asserting the paper's Figure 1 narrative on the OECD data.

use blaeu::prelude::*;

#[test]
fn countries_work_figure_1_walkthrough() {
    // Scaled-down Countries & Work (same structure, fewer rows/columns).
    let (table, _truth) = oecd(&OecdConfig {
        nrows: 800,
        ncols: 30,
        missing_rate: 0.0,
        ..OecdConfig::default()
    })
    .unwrap();
    let mut ex = Explorer::open(table, ExplorerConfig::default()).unwrap();

    // Figure 1a: themes exist and the labor indicators share one theme.
    assert!(ex.themes().len() >= 2);
    let labor_idx = ex
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c == "pct_employees_long_hours"))
        .expect("labor theme detected");
    let labor = &ex.themes()[labor_idx];
    assert!(
        labor.columns.iter().any(|c| c == "avg_annual_income_kusd"),
        "income should share the labor theme, got {:?}",
        labor.columns
    );

    // Figure 1b: the labor map splits on the long-hours indicator with a
    // threshold near 20 (the planted boundary).
    let map = ex.select_theme(labor_idx).unwrap();
    assert!(map.k >= 2, "labor theme has at least two clusters");
    let descriptions: Vec<String> = map
        .regions()
        .iter()
        .flat_map(|r| r.description.clone())
        .collect();
    let has_hours_split = descriptions
        .iter()
        .any(|d| d.contains("pct_employees_long_hours"));
    assert!(
        has_hours_split,
        "map should split on the long-hours column: {descriptions:?}"
    );

    // Figure 1c: zoom into the low-hours / high-income region (or the
    // largest region if the exact one is nested differently) and highlight
    // countries: the pleasant countries should surface.
    let pleasant = map
        .leaves()
        .iter()
        .find(|r| {
            r.description
                .iter()
                .any(|d| d.contains("pct_employees_long_hours <"))
                && r.description.iter().any(|d| d.contains(">="))
        })
        .map(|r| r.id);
    let target =
        pleasant.unwrap_or_else(|| map.leaves().iter().max_by_key(|r| r.count).unwrap().id);
    ex.zoom(target).unwrap();
    let hl = ex.highlight("country").unwrap();
    let all_examples: Vec<String> = hl.regions.iter().flat_map(|r| r.examples.clone()).collect();
    assert!(!all_examples.is_empty());

    // Figure 1d: project onto the unemployment theme.
    let unemployment = ex
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c.contains("unemployment")))
        .expect("unemployment theme detected");
    let rows_before = ex.current().view.nrows();
    ex.project_theme(unemployment).unwrap();
    assert_eq!(
        ex.current().view.nrows(),
        rows_before,
        "projection keeps rows"
    );
    assert!(ex
        .current()
        .columns
        .iter()
        .any(|c| c.contains("unemployment")));

    // The implicit query renders as SQL with both selection and projection.
    let sql = ex.sql();
    assert!(sql.contains("WHERE"), "{sql}");
    assert!(sql.contains("unemployment"), "{sql}");

    // Rollback all the way: exact restoration.
    while ex.depth() > 1 {
        ex.rollback().unwrap();
    }
    assert_eq!(ex.current().view.nrows(), 800);
    assert!(ex.sql().starts_with("SELECT * FROM"));
}

#[test]
fn hollywood_segments_recovered() {
    let (table, truth) = hollywood(&HollywoodConfig::default()).unwrap();
    let mut ex = Explorer::open(table, ExplorerConfig::default()).unwrap();

    // The commercial indicators should cluster together.
    let commercial = ex
        .themes()
        .iter()
        .position(|t| {
            t.columns.iter().any(|c| c == "budget_musd")
                && t.columns.iter().any(|c| c == "worldwide_gross_musd")
        })
        .expect("commercial theme groups budget and gross");

    let map = ex.select_theme(commercial).unwrap();
    // Region labels should align with the planted market segments.
    let mut region_labels = vec![0usize; truth.labels.len()];
    for leaf in map.leaves() {
        for row in map.rows_of(leaf.id).unwrap() {
            region_labels[row as usize] = leaf.cluster;
        }
    }
    let ari = adjusted_rand_index(&region_labels, &truth.labels);
    assert!(ari > 0.25, "map vs planted segments ARI {ari}");
}

#[test]
fn lofar_scale_stays_interactive() {
    use std::time::Instant;
    // 30k rows is enough to prove the point in a debug-build test.
    let (table, _) = lofar(&LofarConfig {
        nrows: 30_000,
        ..LofarConfig::default()
    })
    .unwrap();
    let t0 = Instant::now();
    let mut ex = Explorer::open(table, ExplorerConfig::default()).unwrap();
    let theme_time = t0.elapsed();

    let t0 = Instant::now();
    ex.select_theme(0).unwrap();
    let map_time = t0.elapsed();

    let biggest = ex
        .map()
        .unwrap()
        .leaves()
        .iter()
        .max_by_key(|r| r.count)
        .unwrap()
        .id;
    let t0 = Instant::now();
    ex.zoom(biggest).unwrap();
    let zoom_time = t0.elapsed();

    // Sampling keeps actions bounded; generous ceilings for debug builds.
    assert!(theme_time.as_secs() < 120, "themes took {theme_time:?}");
    assert!(map_time.as_secs() < 120, "map took {map_time:?}");
    assert!(zoom_time.as_secs() < 120, "zoom took {zoom_time:?}");

    // The map still covers every row despite sampling.
    let total: usize = ex.map().unwrap().leaves().iter().map(|r| r.count).sum();
    assert_eq!(total, ex.current().view.nrows());
}

#[test]
fn csv_to_exploration_pipeline() {
    // A user's own CSV goes through the same pipeline.
    let mut csv = String::from("name,hours,salary,dept\n");
    for i in 0..120 {
        let (hours, salary, dept) = if i % 2 == 0 {
            (30 + i % 7, 20 + i % 5, "sales")
        } else {
            (60 + i % 7, 80 + i % 5, "exec")
        };
        csv.push_str(&format!("p{i},{hours},{salary},{dept}\n"));
    }
    let table = read_csv_str("people", &csv, &CsvOptions::default()).unwrap();
    assert_eq!(table.nrows(), 120);

    let map = build_map(
        &table.into(),
        &["hours", "salary", "dept"],
        &MapperConfig::default(),
    )
    .unwrap();
    assert_eq!(map.k, 2, "two planted groups");
    let leaves = map.leaves();
    assert_eq!(leaves.len(), 2);
    // Each leaf holds one parity class (60 rows).
    assert!(
        leaves.iter().all(|r| r.count == 60),
        "{:?}",
        leaves.iter().map(|r| r.count).collect::<Vec<_>>()
    );
}
