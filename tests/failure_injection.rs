//! Failure injection: pathological inputs through the full pipeline.
//! A production exploration tool meets hostile tables; every case here
//! must either work or fail with a clean error — never panic.

use blaeu::prelude::*;
use blaeu::store::ColumnRole;

#[test]
fn all_null_column_survives_pipeline() {
    let n = 120;
    let t = TableBuilder::new("nulls")
        .column(
            "good_a",
            Column::dense_f64((0..n).map(|i| f64::from(i % 7)).collect()),
        )
        .unwrap()
        .column(
            "good_b",
            Column::dense_f64((0..n).map(|i| f64::from(i % 7) * 2.0).collect()),
        )
        .unwrap()
        .column(
            "void",
            Column::from_f64s(std::iter::repeat_n(None, n as usize)),
        )
        .unwrap()
        .build()
        .unwrap();
    let t = TableView::from(t);
    // Dependency graph, themes and maps all tolerate the dead column.
    let dm = dependency_matrix(
        &t,
        &["good_a", "good_b", "void"],
        &DependencyOptions::default(),
    )
    .unwrap();
    assert_eq!(dm.get(0, 2), 0.0, "a dead column carries no information");
    let map = build_map(&t, &["good_a", "good_b", "void"], &MapperConfig::default()).unwrap();
    assert!(map.root().count == 120);
}

#[test]
fn constant_columns_survive_pipeline() {
    let t = TableBuilder::new("const")
        .column("c1", Column::dense_f64(vec![7.0; 100]))
        .unwrap()
        .column(
            "c2",
            Column::from_strs(std::iter::repeat_n(Some("same"), 100)),
        )
        .unwrap()
        .column(
            "varies",
            Column::dense_f64((0..100).map(|i| f64::from(i % 2) * 50.0).collect()),
        )
        .unwrap()
        .build()
        .unwrap();
    let t = TableView::from(t);
    let map = build_map(&t, &["c1", "c2", "varies"], &MapperConfig::default()).unwrap();
    // The only real structure is the binary `varies` split.
    assert_eq!(map.k, 2);
    let total: usize = map.leaves().iter().map(|r| r.count).sum();
    assert_eq!(total, 100);
}

#[test]
fn single_row_and_tiny_tables() {
    let t: TableView = TableBuilder::new("tiny")
        .column("x", Column::dense_f64(vec![1.0]))
        .unwrap()
        .column("y", Column::dense_f64(vec![2.0]))
        .unwrap()
        .build()
        .unwrap()
        .into();
    let map = build_map(&t, &["x", "y"], &MapperConfig::default()).unwrap();
    assert_eq!(map.k, 1);
    assert_eq!(map.root().count, 1);
    assert!(map.root().is_leaf());
}

#[test]
fn duplicated_rows_collapse_to_one_cluster() {
    let t: TableView = TableBuilder::new("dups")
        .column("x", Column::dense_f64(vec![3.0; 500]))
        .unwrap()
        .column("y", Column::dense_f64(vec![-1.0; 500]))
        .unwrap()
        .build()
        .unwrap()
        .into();
    let map = build_map(&t, &["x", "y"], &MapperConfig::default()).unwrap();
    assert_eq!(map.leaves().len(), 1, "identical rows form one region");
}

#[test]
fn unicode_and_hostile_labels() {
    let labels = ["naïve", "日本", "a,b\"c", "x\ny", "🚀", "naïve"];
    let t = TableBuilder::new("unicode")
        .column("label", Column::from_strs(labels.iter().map(|&s| Some(s))))
        .unwrap()
        .column(
            "v",
            // Non-integral values so the CSV roundtrip re-infers Float64
            // (integral floats legitimately come back as Int64).
            Column::dense_f64((0..6).map(|i| f64::from(i) + 0.5).collect()),
        )
        .unwrap()
        .build()
        .unwrap();
    // Describe, histogram, CSV roundtrip.
    let summary = describe(t.column_by_name("label").unwrap(), 10);
    assert_eq!(summary.count(), 6);
    let rendered = blaeu::store::write_csv_string(&t, &CsvOptions::default()).unwrap();
    let back = read_csv_str("unicode", &rendered, &CsvOptions::default()).unwrap();
    assert_eq!(back.nrows(), 6);
    for row in 0..6 {
        assert_eq!(back.row(row).unwrap(), t.row(row).unwrap());
    }
    // Predicates on hostile labels render to valid SQL-ish text.
    let p = Predicate::is_in("label", ["a,b\"c", "🚀"]);
    assert_eq!(p.select(&t).unwrap(), vec![2, 4]);
    assert!(p.to_string().contains("🚀"));
}

#[test]
fn categorical_only_map() {
    let n = 300;
    let cats: Vec<&str> = (0..n)
        .map(|i| {
            if i % 3 == 0 {
                "red"
            } else if i % 3 == 1 {
                "green"
            } else {
                "blue"
            }
        })
        .collect();
    let group: Vec<&str> = (0..n)
        .map(|i| if i % 3 == 0 { "warm" } else { "cool" })
        .collect();
    let t: TableView = TableBuilder::new("cats")
        .column("color", Column::from_strs(cats.into_iter().map(Some)))
        .unwrap()
        .column("family", Column::from_strs(group.into_iter().map(Some)))
        .unwrap()
        .build()
        .unwrap()
        .into();
    let map = build_map(&t, &["color", "family"], &MapperConfig::default()).unwrap();
    assert!(map.k >= 2, "categorical structure detected (k = {})", map.k);
    let total: usize = map.leaves().iter().map(|r| r.count).sum();
    assert_eq!(total, n);
    // Region predicates use categorical membership.
    let has_cat_rule = map
        .regions()
        .iter()
        .any(|r| r.description.iter().any(|d| d.contains("in {")));
    assert!(
        has_cat_rule,
        "{:?}",
        map.regions()
            .iter()
            .map(|r| &r.description)
            .collect::<Vec<_>>()
    );
}

#[test]
fn high_cardinality_categorical_does_not_explode() {
    let n = 400;
    let labels: Vec<String> = (0..n).map(|i| format!("unique_{i}")).collect();
    let t = TableBuilder::new("hicard")
        .column(
            "id_like",
            Column::from_strs(labels.iter().map(|s| Some(s.as_str()))),
        )
        .unwrap()
        .column(
            "x",
            Column::dense_f64((0..n).map(|i| f64::from(i % 2) * 10.0).collect()),
        )
        .unwrap()
        .build()
        .unwrap();
    let t = TableView::from(t);
    // The all-distinct categorical is dropped by the key heuristic for
    // theme detection, and capped by one-hot encoding in maps.
    let cols = blaeu::core::analyzable_columns(&t, &blaeu::core::PreprocessConfig::default());
    assert_eq!(cols, vec!["x"], "pseudo-key dropped");
    let map = build_map(&t, &["id_like", "x"], &MapperConfig::default()).unwrap();
    assert_eq!(map.root().count, n as usize);
}

#[test]
fn explorer_over_label_only_table_fails_cleanly() {
    // One analyzable column is not enough for themes.
    let t = TableBuilder::new("thin")
        .column_with_role(
            "name",
            Column::from_strs([Some("a"), Some("b")]),
            ColumnRole::Label,
        )
        .unwrap()
        .column("only", Column::dense_f64(vec![1.0, 2.0]))
        .unwrap()
        .build()
        .unwrap();
    let err = Explorer::open(t, ExplorerConfig::default()).unwrap_err();
    assert!(matches!(err, BlaeuError::Invalid(_)), "{err}");
}

#[test]
fn zoom_into_sliver_then_keep_navigating() {
    let (table, _) = oecd(&OecdConfig {
        nrows: 500,
        ncols: 24,
        missing_rate: 0.0,
        ..OecdConfig::default()
    })
    .unwrap();
    let mut ex = Explorer::open(table, ExplorerConfig::default()).unwrap();
    ex.select_theme(0).unwrap();
    // Repeatedly zoom into the SMALLEST region until it bottoms out.
    for _ in 0..6 {
        let smallest = ex
            .map()
            .unwrap()
            .leaves()
            .iter()
            .filter(|r| r.count > 0)
            .min_by_key(|r| r.count)
            .map(|r| r.id);
        let Some(region) = smallest else { break };
        if ex.zoom(region).is_err() {
            break;
        }
        // Even in slivers, highlight and SQL must work.
        assert!(ex.highlight("country").is_ok());
        assert!(ex.sql().contains("SELECT"));
    }
    // And we can always get back.
    while ex.depth() > 1 {
        ex.rollback().unwrap();
    }
    assert_eq!(ex.current().view.nrows(), 500);
}

#[test]
fn missing_heavy_table_still_maps() {
    let (table, truth) = planted(&PlantedConfig {
        nrows: 600,
        missing_rate: 0.3, // 30% of all cells are NULL
        ..PlantedConfig::default()
    })
    .unwrap();
    let columns: Vec<&str> = truth
        .theme_of_column
        .iter()
        .filter(|(_, t)| *t == 0)
        .map(|(c, _)| c.as_str())
        .collect();
    let map = build_map(&table.into(), &columns, &MapperConfig::default()).unwrap();
    let total: usize = map.leaves().iter().map(|r| r.count).sum();
    assert_eq!(total, 600, "NULL-heavy rows still route to regions");
    // Structure survives missing data (3 planted clusters, generous floor).
    let mut labels = vec![0usize; 600];
    for leaf in map.leaves() {
        for row in map.rows_of(leaf.id).unwrap() {
            labels[row as usize] = leaf.cluster;
        }
    }
    let ari = adjusted_rand_index(&labels, &truth.labels);
    assert!(ari > 0.5, "ARI under 30% missingness: {ari}");
}

#[test]
fn nan_and_infinity_in_csv_are_rejected_as_values() {
    // "NaN" is a null token; "inf" falls back to categorical.
    let t = read_csv_str("t", "x\n1.5\nNaN\n2.5\n", &CsvOptions::default()).unwrap();
    assert_eq!(t.column_by_name("x").unwrap().null_count(), 1);
    let t = read_csv_str("t", "x\n1.5\ninf\n2.5\n", &CsvOptions::default()).unwrap();
    assert_eq!(
        t.schema().field(0).dtype,
        blaeu::store::DataType::Categorical,
        "non-finite literals force the textual interpretation"
    );
}
