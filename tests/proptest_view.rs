//! Property test for the zero-copy view pipeline: analysis through a
//! [`TableView`] selection must be **bit-identical** to the old
//! take-materialized baseline — preprocess matrices, dependency (MI)
//! scores and CLARA medoids agree exactly, for random tables, random
//! selections, and thread budgets 1 and 8.
//!
//! This is the refactor's safety net: views change *where* cells are read
//! from (an index map over shared columns instead of a gathered copy),
//! and nothing downstream may observe the difference.

use std::sync::Arc;

use proptest::prelude::*;

use blaeu::cluster::{clara, ClaraConfig};
use blaeu::core::{preprocess, MetricChoice, MissingPolicy, PreprocessConfig};
use blaeu::stats::{dependency_matrix, DependencyOptions};
use blaeu::store::{Column, Table, TableBuilder, TableView};

/// A mixed-type table (floats with NULLs, a categorical, a second float)
/// plus a random row selection (arbitrary order, duplicates allowed).
fn table_and_selection() -> impl Strategy<Value = (Table, Vec<u32>)> {
    (
        prop::collection::vec((-50.0f64..50.0, 0u32..5, -10.0f64..10.0, 0u32..20), 24..120),
        prop::collection::vec(0usize..1usize << 16, 10..60),
    )
        .prop_map(|(rows, picks)| {
            let labels = ["alpha", "beta", "gamma", "delta", "epsilon"];
            let a: Vec<Option<f64>> = rows
                .iter()
                .map(|&(v, _, _, m)| if m % 7 == 0 { None } else { Some(v) })
                .collect();
            let cat: Vec<Option<&str>> = rows
                .iter()
                .map(|&(_, c, _, m)| {
                    if m % 11 == 0 {
                        None
                    } else {
                        Some(labels[c as usize])
                    }
                })
                .collect();
            let b: Vec<Option<f64>> = rows.iter().map(|&(_, _, v, _)| Some(v)).collect();
            let table = TableBuilder::new("prop")
                .column("a", Column::from_f64s(a))
                .unwrap()
                .column("cat", Column::from_strs(cat))
                .unwrap()
                .column("b", Column::from_f64s(b))
                .unwrap()
                .build()
                .unwrap();
            let n = table.nrows() as u32;
            let sel: Vec<u32> = picks.iter().map(|&p| p as u32 % n).collect();
            (table, sel)
        })
}

fn bits(data: &[f64]) -> Vec<u64> {
    data.iter().map(|v| v.to_bits()).collect()
}

/// Restores thread-budget auto-detection even when an assertion unwinds.
struct ResetBudget;
impl Drop for ResetBudget {
    fn drop(&mut self) {
        blaeu::exec::set_thread_budget(0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn view_pipeline_bit_identical_to_materialized((table, sel) in table_and_selection()) {
        let _reset = ResetBudget;
        let columns = ["a", "cat", "b"];
        let arc = Arc::new(table);
        let view = TableView::with_rows(Arc::clone(&arc), sel.clone()).unwrap();
        let baseline: TableView = arc.take(&sel).unwrap().into();

        // One result bundle per thread budget; the budgets must agree with
        // each other too (the executor's determinism contract).
        let mut bundles = Vec::new();
        for &threads in &[1usize, 8] {
            blaeu::exec::set_thread_budget(threads);

            // Preprocess matrices, both missing policies.
            let mut matrices = Vec::new();
            for missing in [MissingPolicy::Propagate, MissingPolicy::Impute] {
                let config = PreprocessConfig { missing, ..PreprocessConfig::default() };
                let fv = preprocess(&view, &columns, &config).unwrap();
                let fb = preprocess(&baseline, &columns, &config).unwrap();
                prop_assert_eq!(&fv.features, &fb.features, "feature metadata (threads {})", threads);
                prop_assert_eq!(bits(&fv.data), bits(&fb.data), "matrix bits (threads {})", threads);
                matrices.push((fv.features.clone(), bits(&fv.data)));
            }

            // Dependency (MI) scores over the pairwise sweep.
            let opts = DependencyOptions::default();
            let dv = dependency_matrix(&view, &columns, &opts).unwrap();
            let db = dependency_matrix(&baseline, &columns, &opts).unwrap();
            let mut mi_bits = Vec::new();
            for i in 0..columns.len() {
                for j in 0..columns.len() {
                    prop_assert_eq!(
                        dv.get(i, j).to_bits(),
                        db.get(i, j).to_bits(),
                        "MI cell ({}, {}) at {} threads", i, j, threads
                    );
                    mi_bits.push(dv.get(i, j).to_bits());
                }
            }

            // CLARA medoids over the Gower points of both pipelines.
            let config = PreprocessConfig {
                missing: MissingPolicy::Impute,
                ..PreprocessConfig::default()
            };
            let pv = preprocess(&view, &columns, &config)
                .unwrap()
                .into_points(MetricChoice::Gower);
            let pb = preprocess(&baseline, &columns, &config)
                .unwrap()
                .into_points(MetricChoice::Gower);
            let cv = clara(&pv, 2, &ClaraConfig::default());
            let cb = clara(&pb, 2, &ClaraConfig::default());
            prop_assert_eq!(&cv.medoids, &cb.medoids, "CLARA medoids (threads {})", threads);
            prop_assert_eq!(&cv.labels, &cb.labels, "CLARA labels (threads {})", threads);

            bundles.push((matrices, mi_bits, cv.medoids.clone(), cv.labels.clone()));
        }
        prop_assert_eq!(&bundles[0], &bundles[1], "thread budgets 1 and 8 disagree");
    }
}
