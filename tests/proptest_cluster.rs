//! Property-based tests for the clustering engine's invariants.

use proptest::prelude::*;

use blaeu::cluster::{
    adjusted_rand_index, assign_to_medoids, clara, label_nmi, pam, purity, silhouette_samples,
    silhouette_score, ClaraConfig, DistanceMatrix, Metric, PamConfig, Points,
};

/// Random 2-D point sets (at least 2 points).
fn points_strategy(max: usize) -> impl Strategy<Value = Points> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..max).prop_map(|rows| {
        Points::new(
            rows.into_iter().map(|(x, y)| vec![x, y]).collect(),
            Metric::Euclidean,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pam_invariants(points in points_strategy(60), k in 1usize..6) {
        let matrix = DistanceMatrix::from_points(&points);
        let r = pam(&matrix, k, &PamConfig::default());
        let k_eff = k.min(points.len());
        prop_assert_eq!(r.medoids.len(), k_eff);
        prop_assert_eq!(r.labels.len(), points.len());

        // Medoids are distinct members assigned to themselves.
        let distinct: std::collections::HashSet<usize> = r.medoids.iter().copied().collect();
        prop_assert_eq!(distinct.len(), k_eff);
        for (slot, &m) in r.medoids.iter().enumerate() {
            prop_assert!(m < points.len());
            prop_assert_eq!(r.labels[m], slot);
        }

        // Every point sits at its nearest medoid; deviation adds up.
        let mut total = 0.0;
        for i in 0..points.len() {
            let assigned = matrix.get(i, r.medoids[r.labels[i]]);
            total += assigned;
            for &m in &r.medoids {
                prop_assert!(assigned <= matrix.get(i, m) + 1e-9);
            }
        }
        prop_assert!((total - r.total_deviation).abs() < 1e-6);
    }

    #[test]
    fn pam_deviation_monotone_in_k(points in points_strategy(40)) {
        let matrix = DistanceMatrix::from_points(&points);
        let mut prev = f64::INFINITY;
        for k in 1..=points.len().min(5) {
            let r = pam(&matrix, k, &PamConfig::default());
            prop_assert!(r.total_deviation <= prev + 1e-9);
            prev = r.total_deviation;
        }
    }

    #[test]
    fn clara_assignment_consistent(points in points_strategy(80), k in 1usize..5) {
        let r = clara(&points, k, &ClaraConfig::default());
        let matrix = DistanceMatrix::from_points(&points);
        let (labels, total) = assign_to_medoids(&matrix, &r.medoids);
        prop_assert_eq!(labels, r.labels);
        prop_assert!((total - r.total_deviation).abs() < 1e-6);
    }

    #[test]
    fn silhouette_bounds(points in points_strategy(50), k in 2usize..5) {
        let matrix = DistanceMatrix::from_points(&points);
        let r = pam(&matrix, k, &PamConfig::default());
        for s in silhouette_samples(&matrix, &r.labels) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        }
        let avg = silhouette_score(&matrix, &r.labels);
        prop_assert!((-1.0..=1.0).contains(&avg));
    }

    #[test]
    fn ari_nmi_permutation_invariance(
        labels in prop::collection::vec(0usize..4, 2..100),
    ) {
        // Relabeling clusters must not change agreement scores.
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 4).collect();
        let ari = adjusted_rand_index(&labels, &permuted);
        prop_assert!((ari - 1.0).abs() < 1e-9, "ARI {ari}");
        let nmi = label_nmi(&labels, &permuted);
        prop_assert!((nmi - 1.0).abs() < 1e-9, "NMI {nmi}");
        prop_assert!(purity(&labels, &permuted) > 0.99);
    }

    #[test]
    fn ari_symmetry(
        a in prop::collection::vec(0usize..3, 2..80),
        b in prop::collection::vec(0usize..3, 2..80),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let fwd = adjusted_rand_index(a, b);
        let bwd = adjusted_rand_index(b, a);
        prop_assert!((fwd - bwd).abs() < 1e-9);
        let fwd = label_nmi(a, b);
        let bwd = label_nmi(b, a);
        prop_assert!((fwd - bwd).abs() < 1e-9);
    }

    #[test]
    fn distance_matrix_consistency(points in points_strategy(40)) {
        let matrix = DistanceMatrix::from_points(&points);
        for i in 0..points.len() {
            prop_assert_eq!(matrix.get(i, i), 0.0);
            for j in 0..points.len() {
                prop_assert!((matrix.get(i, j) - matrix.get(j, i)).abs() < 1e-12);
                prop_assert!((matrix.get(i, j) - points.dist(i, j)).abs() < 1e-12);
            }
        }
    }
}
