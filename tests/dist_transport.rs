//! Loopback acceptance tests for the distributed shard fan-out: real
//! `NetServer` workers on loopback sockets, a [`ShardCoordinator`]
//! fanning sketch ops over them, and the tier's one promise checked
//! end to end — coordinator-merged digests bit-identical to the
//! in-process run across worker counts and thread budgets — plus the
//! failure contract: dead workers reassign, layout disagreement is a
//! typed fatal error, and the shard surface rejects malformed input
//! with the same status mapping the session surface uses.

use std::sync::Arc;

use blaeu::prelude::*;
use serde_json::{json, Value};

/// The shared fixture: mixed numeric/categorical table every worker
/// registers a full replica of.
fn fixture() -> Arc<Table> {
    let n = 600;
    let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin() * 8.0).collect();
    let ys: Vec<f64> = xs.iter().map(|v| v * 1.5 - 2.0).collect();
    let labels: Vec<String> = (0..n).map(|i| format!("g{}", i % 6)).collect();
    Arc::new(
        TableBuilder::new("t")
            .column("x", Column::dense_f64(xs))
            .unwrap()
            .column("y", Column::dense_f64(ys))
            .unwrap()
            .column(
                "g",
                Column::from_strs(labels.iter().map(|s| Some(s.as_str()))),
            )
            .unwrap()
            .build()
            .unwrap(),
    )
}

fn serve(table: &Arc<Table>) -> NetServer {
    let engine = Arc::new(AsyncSessionServer::new(ServerConfig::default()));
    let net = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).expect("loopback bind");
    net.register_table("t", Arc::clone(table));
    net
}

/// One op per mergeable analysis family.
fn ops() -> Vec<SketchOp> {
    vec![
        SketchOp::DepMatrix {
            columns: vec!["x".into(), "y".into(), "g".into()],
        },
        SketchOp::Describe {
            column: "x".into(),
            top_k: 5,
        },
        SketchOp::Describe {
            column: "g".into(),
            top_k: 4,
        },
        SketchOp::Histogram {
            column: "y".into(),
            bins: 12,
        },
        SketchOp::ClaraAssign {
            columns: vec!["x".into(), "y".into(), "g".into()],
            medoids: vec![7, 300, 590],
        },
    ]
}

/// The single-process reference at an explicit thread budget.
fn in_process_digest(table: &Arc<Table>, op: &SketchOp, threads: usize) -> u64 {
    let view = TableView::new(Arc::clone(table));
    let plan = op.plan(&view).expect("fixture columns exist");
    let partial = plan.run_range(0..plan.spec().shard_count(), threads);
    let result = op.finalize(partial).expect("well-formed partial");
    Response::Sketch(Box::new(result)).digest()
}

/// The acceptance criterion: coordinator-merged digests equal the
/// in-process digests for every op family, at worker counts {1, 2, 4},
/// and the in-process reference itself is thread-budget-invariant
/// ({1, 8}) — so the whole cross: workers × threads agrees on one
/// digest per op.
#[test]
fn coordinator_digests_match_in_process_across_workers_and_threads() {
    let table = fixture();
    let nrows = table.nrows();
    let expected: Vec<u64> = ops()
        .iter()
        .map(|op| {
            let d1 = in_process_digest(&table, op, 1);
            let d8 = in_process_digest(&table, op, 8);
            assert_eq!(d1, d8, "{op:?}: thread budget changed the digest");
            d1
        })
        .collect();
    for workers in [1usize, 2, 4] {
        let nets: Vec<NetServer> = (0..workers).map(|_| serve(&table)).collect();
        let coordinator =
            ShardCoordinator::new(nets.iter().map(|n| n.local_addr().to_string()).collect());
        for (op, want) in ops().iter().zip(&expected) {
            let response = coordinator
                .run("t", op, nrows)
                .unwrap_or_else(|e| panic!("{op:?} over {workers} workers: {e}"));
            assert_eq!(
                response.digest(),
                *want,
                "{op:?} diverged over {workers} workers"
            );
        }
        let stats = coordinator.stats_json();
        assert_eq!(
            stats["coordinator"]["fan_outs"].as_u64(),
            Some(ops().len() as u64)
        );
        assert!(
            stats["fleet"]["partials_served"].as_u64().unwrap() > 0,
            "workers counted served partials: {stats:?}"
        );
        assert!(stats["fleet"]["merge_bytes_out"].as_u64().unwrap() > 0);
        for net in nets {
            net.shutdown();
        }
    }
}

/// A dead worker does not kill the fan-out: its ranges reassign to the
/// survivor and the digest still matches the in-process run.
#[test]
fn dead_worker_reassigns_to_survivor() {
    let table = fixture();
    let nrows = table.nrows();
    let alive = serve(&table);
    let dead = serve(&table);
    let dead_addr = dead.local_addr().to_string();
    dead.shutdown();
    let coordinator = ShardCoordinator::new(vec![alive.local_addr().to_string(), dead_addr]);
    let op = &ops()[0];
    let response = coordinator
        .run("t", op, nrows)
        .expect("survivor covers the dead worker's ranges");
    assert_eq!(response.digest(), in_process_digest(&table, op, 1));
    assert!(
        coordinator
            .stats()
            .reassignments
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "the dead worker's range must have been reassigned"
    );
    alive.shutdown();
}

/// A replica whose shard layout disagrees with the coordinator answers
/// a typed `invalid` error — fatal, not retried into a wrong merge.
#[test]
fn layout_disagreement_is_a_typed_fatal_error() {
    let table = fixture();
    let net = serve(&table);
    let coordinator = ShardCoordinator::new(vec![net.local_addr().to_string()]);
    // Lying about the row count changes `items` for row-sharded ops.
    let op = SketchOp::Describe {
        column: "x".into(),
        top_k: 5,
    };
    let error = coordinator
        .run("t", &op, table.nrows() * 2)
        .expect_err("layout mismatch must fail");
    assert_eq!(error.kind(), "invalid", "{error}");
    assert!(
        error.to_string().contains("disagrees on shard layout"),
        "{error}"
    );
    net.shutdown();
}

fn raw(net: &NetServer, body: &Value) -> (u16, Value) {
    let mut client = WorkerClient::connect(&net.local_addr().to_string()).expect("connect");
    let text = serde_json::to_string(body).expect("serialization is infallible");
    let (status, answer) = client
        .request("POST", "/shards/t/commands", Some(&text))
        .expect("request");
    (
        status,
        serde_json::from_str(&answer).expect("worker answers JSON"),
    )
}

/// The shard surface's error contract: only sketch commands, only
/// well-formed shard ranges, only registered tables — each rejection
/// typed and mapped to the same statuses the session surface uses.
#[test]
fn shard_surface_rejects_malformed_requests_with_typed_errors() {
    let table = fixture();
    let net = serve(&table);
    let shard = json!({"start": 0u64, "end": 1u64, "items": table.nrows()});

    // A non-sketch command on the shard surface: typed 422.
    let (status, body) = raw(&net, &json!({"cmd": "depth", "shard": shard.clone()}));
    assert_eq!(status, 422, "{body:?}");
    assert_eq!(body["error"]["code"].as_str(), Some("invalid"));

    // Missing shard range: 400 before anything executes.
    let op = json!({"op": "describe", "column": "x", "top_k": 5u64});
    let (status, body) = raw(&net, &json!({"cmd": "sketch", "op": op.clone()}));
    assert_eq!(status, 400, "{body:?}");
    assert_eq!(body["error"]["code"].as_str(), Some("bad_request"));

    // Unknown table: 404 with the sorted registry, like POST /sessions.
    let mut client = WorkerClient::connect(&net.local_addr().to_string()).expect("connect");
    let text = serde_json::to_string(&json!({
        "cmd": "sketch", "op": op.clone(), "shard": shard.clone(),
    }))
    .expect("serialization is infallible");
    let (status, answer) = client
        .request("POST", "/shards/nope/commands", Some(&text))
        .expect("request");
    let body: Value = serde_json::from_str(&answer).unwrap();
    assert_eq!(status, 404, "{body:?}");
    assert_eq!(body["error"]["code"].as_str(), Some("unknown_table"));
    assert_eq!(body["error"]["detail"]["tables"][0].as_str(), Some("t"));

    // Range past the shard count: typed 422.
    let (status, body) = raw(
        &net,
        &json!({
            "cmd": "sketch", "op": op.clone(),
            "shard": json!({"start": 0u64, "end": 10_000u64, "items": table.nrows()}),
        }),
    );
    assert_eq!(status, 422, "{body:?}");
    assert_eq!(body["error"]["code"].as_str(), Some("invalid"));

    // A good request after all those rejections still works, and the
    // worker's shard counters saw exactly the served partials.
    let (status, body) = raw(
        &net,
        &json!({"cmd": "sketch", "op": op.clone(), "shard": shard.clone()}),
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body["response"].as_str(), Some("sketch_partial"));
    assert!(
        body["digest"].as_str().is_some(),
        "partial carries a digest"
    );
    // Same op again: the plan cache answers the second request.
    let (status, _) = raw(&net, &json!({"cmd": "sketch", "op": op, "shard": shard}));
    assert_eq!(status, 200);

    let mut client = WorkerClient::connect(&net.local_addr().to_string()).expect("connect");
    let (status, answer) = client.request("GET", "/stats", None).expect("stats");
    assert_eq!(status, 200);
    let stats: Value = serde_json::from_str(&answer).unwrap();
    assert_eq!(stats["shard"]["partials_served"].as_u64(), Some(2));
    assert!(stats["shard"]["merge_bytes_out"].as_u64().unwrap() > 0);
    // Planning precedes range validation, so the rejected out-of-range
    // request primed the cache (one miss) and both good requests hit.
    assert_eq!(stats["shard"]["plan_hits"].as_u64(), Some(2));
    assert_eq!(stats["shard"]["plan_misses"].as_u64(), Some(1));
    assert!(
        stats["shard"]["latency"]["count"].as_u64() == Some(2),
        "per-shard latency recorded: {stats:?}"
    );
    net.shutdown();
}
