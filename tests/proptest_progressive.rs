//! Property tests for progressive refinement determinism: across random
//! table sizes and generator seeds, the ladder streamed by
//! `map_progressive` produces the *same per-level digest sequence* at
//! thread budgets {1, 8} with the result cache on and off — and its
//! final rung is bit-identical to a plain exact `map` of the same view.
//! Progressiveness is presentation, never a result change.

use std::sync::Arc;

use proptest::prelude::*;

use blaeu::prelude::*;

/// Runs `select_theme 0; map_progressive` on a fresh engine and returns
/// the ladder as `(level, sample_size, final, map_digest)` rows — the
/// level-0 answer from the handle, every later rung from the stream.
fn ladder(
    table: &Arc<Table>,
    threads: usize,
    cache_capacity: usize,
) -> Vec<(usize, usize, bool, u64)> {
    let engine = AsyncSessionServer::new(ServerConfig {
        threads,
        queue_capacity: 64,
        cache_capacity,
        ..ServerConfig::default()
    });
    let id = engine
        .open_session(Arc::clone(table), ExplorerConfig::default())
        .expect("session opens");
    engine
        .submit(id, Command::SelectTheme(0))
        .expect("submits")
        .join()
        .expect("theme 0 exists");
    let (handle, stream) = engine.submit_progressive(id).expect("submits");
    let mut rows = Vec::new();
    let mut record = |response: Response| match response {
        Response::MapDelta { delta, .. } => {
            rows.push((
                delta.level,
                delta.sample_size,
                delta.final_level,
                delta.map_digest,
            ));
        }
        other => panic!("expected a delta, got {other:?}"),
    };
    record(handle.join().expect("level 0 resolves"));
    while let Some(result) = stream.next() {
        record(result.expect("rungs resolve"));
    }
    engine.close(id).expect("closes");
    rows
}

/// The exact map's digest for the same table and theme — the anchor the
/// final rung must hit bit for bit.
fn exact_digest(table: &Arc<Table>) -> u64 {
    let engine = AsyncSessionServer::new(ServerConfig {
        threads: 2,
        queue_capacity: 64,
        cache_capacity: 0,
        ..ServerConfig::default()
    });
    let id = engine
        .open_session(Arc::clone(table), ExplorerConfig::default())
        .expect("session opens");
    engine
        .submit(id, Command::SelectTheme(0))
        .expect("submits")
        .join()
        .expect("theme 0 exists");
    let digest = engine
        .submit(id, Command::Map)
        .expect("submits")
        .join()
        .expect("map builds")
        .digest();
    engine.close(id).expect("closes");
    digest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The satellite invariant, fuzzed: every refinement level's digest
    /// is bit-identical across `BLAEU_THREADS` ∈ {1, 8} × cache on/off,
    /// the schedule is a pure function of the row count (same shape
    /// everywhere), and the final level equals the exact `map`.
    #[test]
    fn refinement_is_deterministic_across_threads_and_cache(
        nrows in 150usize..420,
        seed in 0u64..1000,
    ) {
        let table = Arc::new(
            hollywood(&HollywoodConfig { nrows, seed })
                .expect("generator succeeds")
                .0,
        );
        let reference = ladder(&table, 1, 0);
        prop_assert!(reference.len() >= 2, "expected a ladder, got {reference:?}");
        // Schedule shape: strictly growing samples, exactly one final
        // rung, levels numbered 0..k.
        for (k, row) in reference.iter().enumerate() {
            prop_assert_eq!(row.0, k);
            prop_assert_eq!(row.2, k == reference.len() - 1);
            if k > 0 {
                prop_assert!(row.1 > reference[k - 1].1, "{reference:?}");
            }
        }
        prop_assert_eq!(
            reference.last().unwrap().3,
            exact_digest(&table),
            "final rung must be bit-identical to a plain map"
        );
        for threads in [1usize, 8] {
            for cache_capacity in [0usize, 64] {
                let got = ladder(&table, threads, cache_capacity);
                prop_assert_eq!(
                    &got, &reference,
                    "ladder diverged at threads={} cache={}", threads, cache_capacity
                );
            }
        }
    }
}
