//! Loopback acceptance tests for the HTTP/NDJSON transport: raw
//! `TcpStream` clients drive a real listening socket and assert that the
//! wire path is *observationally identical* to the in-process
//! `AsyncSessionServer` path — same per-session FIFO, same response
//! digests bit for bit, at engine pool sizes 1 and 8, cache on and off —
//! plus the failure-mode contract: 413 for oversized bodies, stalled and
//! half-closed sockets freeing their worker, and `DELETE` racing
//! in-flight commands resolving every response line.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use blaeu::prelude::*;
use serde_json::Value;

fn shared_table() -> Arc<Table> {
    Arc::new(
        hollywood(&HollywoodConfig {
            nrows: 500,
            ..HollywoodConfig::default()
        })
        .unwrap()
        .0,
    )
}

fn serve(
    table: &Arc<Table>,
    threads: usize,
    cache_capacity: usize,
    net_config: NetConfig,
) -> NetServer {
    let engine = Arc::new(AsyncSessionServer::new(ServerConfig {
        threads,
        queue_capacity: 64,
        cache_capacity,
        ..ServerConfig::default()
    }));
    let net = NetServer::bind("127.0.0.1:0", engine, net_config).expect("loopback bind");
    net.register_table("hollywood", Arc::clone(table));
    net
}

/// A deliberately dumb HTTP client: raw socket, blocking reads, explicit
/// framing — if this can speak to the server, anything can.
struct WireClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

struct WireResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl WireResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Value {
        serde_json::from_str(&self.body)
            .unwrap_or_else(|e| panic!("unparseable body {:?}: {e}", self.body))
    }

    /// NDJSON lines of a streamed body.
    fn lines(&self) -> Vec<Value> {
        self.body
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
            .collect()
    }
}

impl WireClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("loopback connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        WireClient {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, method: &str, path: &str, body: Option<&str>) {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: blaeu\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes()).unwrap();
        if let Some(body) = body {
            self.writer.write_all(body.as_bytes()).unwrap();
        }
        self.writer.flush().unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response line");
        line.trim_end().to_owned()
    }

    fn read_response(&mut self) -> WireResponse {
        let status_line = self.read_line();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .unwrap();
        let mut headers = Vec::new();
        loop {
            let line = self.read_line();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').expect("header");
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
        let header = |name: &str| {
            headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        let body = if header("transfer-encoding").as_deref() == Some("chunked") {
            let mut out = Vec::new();
            loop {
                let size_line = self.read_line();
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .unwrap_or_else(|_| panic!("bad chunk size {size_line:?}"));
                let mut chunk = vec![0u8; size + 2]; // chunk + CRLF
                self.reader.read_exact(&mut chunk).unwrap();
                if size == 0 {
                    break;
                }
                out.extend_from_slice(&chunk[..size]);
            }
            String::from_utf8(out).unwrap()
        } else {
            let len: usize = header("content-length")
                .expect("framed response")
                .parse()
                .unwrap();
            let mut body = vec![0u8; len];
            self.reader.read_exact(&mut body).unwrap();
            String::from_utf8(body).unwrap()
        };
        WireResponse {
            status,
            headers,
            body,
        }
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> WireResponse {
        self.send(method, path, body);
        self.read_response()
    }
}

/// The exploration script of `tests/async_server.rs`, as wire bodies.
fn script() -> Vec<Command> {
    vec![
        Command::Themes,
        Command::SelectTheme(0),
        Command::Highlight("film".into()),
        Command::Zoom(0),
        Command::Map,
        Command::Sql,
        Command::RegionDetail {
            region: 0,
            sample_rows: 5,
        },
        Command::Rollback,
        Command::Depth,
    ]
}

/// Runs the script in-process and returns the digest stream.
fn in_process_digests(srv: &AsyncSessionServer, table: &Arc<Table>) -> Vec<u64> {
    let id = srv
        .open_session(Arc::clone(table), ExplorerConfig::default())
        .unwrap();
    let handles: Vec<_> = script()
        .into_iter()
        .map(|cmd| srv.submit(id, cmd).unwrap())
        .collect();
    let digests = handles
        .into_iter()
        .map(|h| h.join().unwrap().digest())
        .collect();
    srv.close(id).unwrap();
    digests
}

fn wire_digest(envelope: &Value) -> u64 {
    let hex = envelope["digest"]
        .as_str()
        .unwrap_or_else(|| panic!("no digest in {envelope:?}"));
    u64::from_str_radix(hex, 16).unwrap()
}

/// The acceptance criterion: the wire path's digest stream is
/// bit-identical to the in-process path for the same command sequence,
/// whatever the pool size, cache on or off.
#[test]
fn wire_digests_match_in_process_across_pools_and_cache_modes() {
    let table = shared_table();
    for threads in [1usize, 8] {
        for cache_capacity in [0usize, 64] {
            let reference = AsyncSessionServer::new(ServerConfig {
                threads,
                queue_capacity: 64,
                cache_capacity,
                ..ServerConfig::default()
            });
            let expected = in_process_digests(&reference, &table);

            let net = serve(&table, threads, cache_capacity, NetConfig::default());
            let mut client = WireClient::connect(net.local_addr());
            let opened = client.request("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
            assert_eq!(opened.status, 201, "{}", opened.body);
            let session = opened.json()["session"].as_u64().unwrap();

            let got: Vec<u64> = script()
                .iter()
                .map(|cmd| {
                    let body = serde_json::to_string(&cmd.to_json()).unwrap();
                    let response = client.request(
                        "POST",
                        &format!("/sessions/{session}/commands"),
                        Some(&body),
                    );
                    assert_eq!(response.status, 200, "{body} -> {}", response.body);
                    wire_digest(&response.json())
                })
                .collect();
            assert_eq!(
                got, expected,
                "wire digests diverged at threads={threads} cache={cache_capacity}"
            );

            let closed = client.request("DELETE", &format!("/sessions/{session}"), None);
            assert_eq!(closed.status, 200);
            net.shutdown();
        }
    }
}

/// The NDJSON batch endpoint: per-session FIFO on the wire, one streamed
/// line per command, digests identical to the single-command path.
#[test]
fn batch_ndjson_streams_fifo_responses() {
    let table = shared_table();
    let net = serve(&table, 4, 0, NetConfig::default());
    let mut client = WireClient::connect(net.local_addr());
    let opened = client.request("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
    let session = opened.json()["session"].as_u64().unwrap();

    let batch: String = script()
        .iter()
        .map(|cmd| {
            let mut line = serde_json::to_string(&cmd.to_json()).unwrap();
            line.push('\n');
            line
        })
        .collect();
    let streamed = client.request(
        "POST",
        &format!("/sessions/{session}/commands/batch"),
        Some(&batch),
    );
    assert_eq!(streamed.status, 200, "{}", streamed.body);
    let lines = streamed.lines();
    assert_eq!(lines.len(), script().len(), "one line per command");
    // The pipeline only makes sense in submission order: themes, then a
    // map, …, then Rollback landing back at depth 1.
    let kinds: Vec<&str> = lines
        .iter()
        .map(|l| l["response"].as_str().expect("success line"))
        .collect();
    assert_eq!(
        kinds,
        [
            "themes",
            "map",
            "highlight",
            "map",
            "map",
            "sql",
            "region_detail",
            "depth",
            "depth"
        ]
    );
    // The trailing Depth query agrees with the Rollback's own answer —
    // both ran, in order, on the same history.
    assert_eq!(lines[7]["depth"].as_u64(), lines[8]["depth"].as_u64());

    // Digest parity with the single-command wire path on a fresh session.
    let opened = client.request("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
    let single = opened.json()["session"].as_u64().unwrap();
    let singles: Vec<u64> = script()
        .iter()
        .map(|cmd| {
            let body = serde_json::to_string(&cmd.to_json()).unwrap();
            let r = client.request("POST", &format!("/sessions/{single}/commands"), Some(&body));
            wire_digest(&r.json())
        })
        .collect();
    let batched: Vec<u64> = lines.iter().map(wire_digest).collect();
    assert_eq!(batched, singles);
    net.shutdown();
}

/// A `map_progressive` line on the batch channel streams its coarse
/// level-0 answer first and then one `"kind":"delta"` line per
/// refinement rung, ending on `"final":true` whose `map_digest` is
/// bit-identical to a plain `map` of the same view — and `/stats` counts
/// the streamed levels.
#[test]
fn batch_streams_progressive_deltas_until_exact() {
    let table = shared_table();
    let net = serve(&table, 4, 64, NetConfig::default());
    let mut client = WireClient::connect(net.local_addr());

    // Reference: the exact map's wire digest on its own session.
    let opened = client.request("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
    let reference = opened.json()["session"].as_u64().unwrap();
    client.request(
        "POST",
        &format!("/sessions/{reference}/commands"),
        Some(r#"{"cmd": "select_theme", "theme": 0}"#),
    );
    let exact = client.request(
        "POST",
        &format!("/sessions/{reference}/commands"),
        Some(r#"{"cmd": "map"}"#),
    );
    assert_eq!(exact.status, 200, "{}", exact.body);
    let exact_digest = exact.json()["digest"].as_str().unwrap().to_owned();

    // Progressive: one batch line answers as a ladder of delta lines.
    let opened = client.request("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
    let session = opened.json()["session"].as_u64().unwrap();
    let batch = concat!(
        "{\"cmd\": \"select_theme\", \"theme\": 0}\n",
        "{\"cmd\": \"map_progressive\"}\n",
    );
    let streamed = client.request(
        "POST",
        &format!("/sessions/{session}/commands/batch"),
        Some(batch),
    );
    assert_eq!(streamed.status, 200, "{}", streamed.body);
    let lines = streamed.lines();
    let deltas: Vec<&Value> = lines
        .iter()
        .filter(|l| l["kind"].as_str() == Some("delta"))
        .collect();
    assert!(deltas.len() >= 2, "expected a ladder, got {lines:?}");
    assert_eq!(lines.len(), 1 + deltas.len(), "select_theme + the ladder");
    for (k, delta) in deltas.iter().enumerate() {
        assert_eq!(delta["level"].as_u64(), Some(k as u64), "{delta:?}");
        assert_eq!(
            delta["final"].as_bool(),
            Some(k == deltas.len() - 1),
            "{delta:?}"
        );
        assert!(delta["changed"].is_array(), "{delta:?}");
    }
    // The ladder's sample sizes grow strictly — coarse first.
    let sizes: Vec<u64> = deltas
        .iter()
        .map(|d| d["sample_size"].as_u64().unwrap())
        .collect();
    assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    // The final rung IS the exact map, bit for bit.
    assert_eq!(
        deltas.last().unwrap()["map_digest"].as_str(),
        Some(exact_digest.as_str()),
        "final refinement must match a plain map"
    );

    let stats = client.request("GET", "/stats", None).json();
    let progressive = &stats["progressive"];
    assert!(
        progressive["levels_streamed"].as_u64().unwrap() >= deltas.len() as u64 - 1,
        "{progressive:?}"
    );
    assert!(
        progressive["latency"]["count"].as_u64().unwrap() >= deltas.len() as u64,
        "{progressive:?}"
    );
    net.shutdown();
}

/// Malformed bodies are 400 with the parse error, unknown sessions 404,
/// unknown tables 404, wrong methods 405 — and the connection survives
/// every one of them (keep-alive).
#[test]
fn error_statuses_are_mapped_and_keep_alive_survives() {
    let table = shared_table();
    let net = serve(&table, 2, 0, NetConfig::default());
    let mut client = WireClient::connect(net.local_addr());

    let health = client.request("GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(health.json()["status"].as_str(), Some("ok"));

    let bad_json = client.request("POST", "/sessions/0/commands", Some("{\"cmd\": "));
    assert_eq!(bad_json.status, 400);
    let bad_json = bad_json.json();
    assert_eq!(bad_json["error"]["code"].as_str(), Some("bad_request"));
    assert!(
        bad_json["error"]["message"]
            .as_str()
            .unwrap()
            .contains("line 1"),
        "parse position missing: {bad_json:?}"
    );

    let bad_shape = client.request("POST", "/sessions/0/commands", Some(r#"{"cmd": "warp"}"#));
    assert_eq!(bad_shape.status, 400);

    let no_session = client.request(
        "POST",
        "/sessions/999/commands",
        Some(r#"{"cmd": "depth"}"#),
    );
    assert_eq!(no_session.status, 404);
    assert_eq!(
        no_session.json()["error"]["code"].as_str(),
        Some("unknown_session")
    );

    let no_table = client.request("POST", "/sessions", Some(r#"{"table": "nope"}"#));
    assert_eq!(no_table.status, 404);
    let no_table = no_table.json();
    assert_eq!(no_table["error"]["code"].as_str(), Some("unknown_table"));
    assert_eq!(
        no_table["error"]["detail"]["tables"][0].as_str(),
        Some("hollywood"),
        "detail lists the registered tables"
    );

    let bad_method = client.request("DELETE", "/healthz", None);
    assert_eq!(bad_method.status, 405);
    assert_eq!(
        bad_method.json()["error"]["code"].as_str(),
        Some("method_not_allowed")
    );

    let no_route = client.request("GET", "/maps/7", None);
    assert_eq!(no_route.status, 404);
    assert_eq!(
        no_route.json()["error"]["code"].as_str(),
        Some("unknown_route")
    );

    // Domain errors from execution are 422, and the session survives.
    let opened = client.request("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
    let session = opened.json()["session"].as_u64().unwrap();
    let zoom = client.request(
        "POST",
        &format!("/sessions/{session}/commands"),
        Some(r#"{"cmd": "zoom", "region": 0}"#),
    );
    assert_eq!(zoom.status, 422, "{}", zoom.body);
    assert_eq!(zoom.json()["error"]["code"].as_str(), Some("no_active_map"));
    let depth = client.request(
        "POST",
        &format!("/sessions/{session}/commands"),
        Some(r#"{"cmd": "depth"}"#),
    );
    assert_eq!(depth.status, 200);

    // /stats reflects the traffic this test generated — aggregates only,
    // per-session detail lives on GET /sessions now.
    let stats = client.request("GET", "/stats", None);
    assert_eq!(stats.status, 200);
    let stats = stats.json();
    assert!(stats["requests"].as_u64().unwrap() >= 10);
    assert!(stats["rejected"].as_u64().unwrap() >= 5);
    assert!(stats.get("queue_depths").is_none(), "moved to /sessions");
    assert!(stats["journal"].is_null(), "no journal configured");

    let listed = client.request("GET", "/sessions", None);
    assert_eq!(listed.status, 200);
    let listed = listed.json();
    let sessions = listed["sessions"].as_array().unwrap();
    assert_eq!(sessions.len(), 1, "{listed:?}");
    assert_eq!(sessions[0]["session"].as_u64(), Some(session));
    assert_eq!(sessions[0]["pending"].as_u64(), Some(0));
    assert!(sessions[0]["journal_seq"].is_null(), "journal off");
    assert!(sessions[0]["idle_ms"].as_u64().is_some());

    // A journal-less engine answers history with a typed 404.
    let history = client.request("GET", &format!("/sessions/{session}/history"), None);
    assert_eq!(history.status, 404);
    assert_eq!(history.json()["error"]["code"].as_str(), Some("no_journal"));
    net.shutdown();
}

/// Oversized bodies answer 413 before a single body byte is buffered,
/// and the server stays healthy for the next connection.
#[test]
fn oversized_bodies_rejected_with_413() {
    let table = shared_table();
    let net = serve(
        &table,
        1,
        0,
        NetConfig {
            max_body_bytes: 1024,
            ..NetConfig::default()
        },
    );
    let mut client = WireClient::connect(net.local_addr());
    // Announce far more than the limit — but never send it: the server
    // must reject on the announcement alone (bounded read).
    client
        .writer
        .write_all(
            b"POST /sessions/1/commands HTTP/1.1\r\nHost: x\r\nContent-Length: 10000000\r\n\r\n",
        )
        .unwrap();
    client.writer.flush().unwrap();
    let response = client.read_response();
    assert_eq!(response.status, 413);
    let body = response.json();
    assert_eq!(body["error"]["code"].as_str(), Some("payload_too_large"));
    assert_eq!(body["error"]["detail"]["limit"].as_u64(), Some(1024));
    assert_eq!(
        body["error"]["detail"]["announced"].as_u64(),
        Some(10_000_000)
    );

    // Fresh connection: the server is still serving.
    let mut next = WireClient::connect(net.local_addr());
    assert_eq!(next.request("GET", "/healthz", None).status, 200);
    net.shutdown();
}

/// A stalled half-open peer and a mid-body disconnect both release their
/// connection worker: with a SINGLE worker, a well-behaved client must
/// still get served after the bad ones.
#[test]
fn stalled_and_half_closed_peers_cannot_wedge_the_worker() {
    let table = shared_table();
    let net = serve(
        &table,
        1,
        0,
        NetConfig {
            conn_threads: 1,
            read_timeout: Duration::from_millis(200),
            ..NetConfig::default()
        },
    );

    // Peer 1: sends half a request line, then stalls silently.
    let mut staller = TcpStream::connect(net.local_addr()).unwrap();
    staller.write_all(b"POST /sessions HTT").unwrap();
    staller.flush().unwrap();

    // Peer 2: announces a body, sends a fragment, then half-closes.
    let mut torn = TcpStream::connect(net.local_addr()).unwrap();
    torn.write_all(b"POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\nfrag")
        .unwrap();
    torn.flush().unwrap();
    torn.shutdown(std::net::Shutdown::Write).unwrap();

    // The single worker must shake both off (read timeout / EOF) and
    // serve a well-behaved client promptly.
    let mut client = WireClient::connect(net.local_addr());
    let health = client.request("GET", "/healthz", None);
    assert_eq!(health.status, 200, "worker wedged by bad peers");
    drop(staller);
    net.shutdown();
}

/// QueueFull over the wire: 429 with the observed `pending`, the
/// *clamped* capacity, and a Retry-After hint.
#[test]
fn queue_full_maps_to_429_with_occupancy() {
    let table = shared_table();
    let engine = Arc::new(AsyncSessionServer::new(ServerConfig {
        threads: 1,
        queue_capacity: 0, // clamped to 1 — the error must report 1
        cache_capacity: 0,
        ..ServerConfig::default()
    }));
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&engine), NetConfig::default()).unwrap();
    net.register_table("hollywood", Arc::clone(&table));
    let mut client = WireClient::connect(net.local_addr());
    let opened = client.request("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
    let session = opened.json()["session"].as_u64().unwrap();

    // Park the engine's only worker so submitted commands stay queued.
    let gate = Arc::new(Barrier::new(2));
    let parked = {
        let gate = Arc::clone(&gate);
        engine.pool().submit(move || {
            gate.wait();
        })
    };
    // First command occupies the (clamped) 1-slot queue; joined later.
    let pending = engine.submit(session, Command::Depth).unwrap();
    let full = client.request(
        "POST",
        &format!("/sessions/{session}/commands"),
        Some(r#"{"cmd": "depth"}"#),
    );
    assert_eq!(full.status, 429, "{}", full.body);
    assert_eq!(full.header("retry-after"), Some("1"));
    let body = full.json();
    assert_eq!(body["error"]["code"].as_str(), Some("queue_full"));
    assert_eq!(body["error"]["detail"]["pending"].as_u64(), Some(1));
    assert_eq!(
        body["error"]["detail"]["capacity"].as_u64(),
        Some(1),
        "clamped capacity"
    );

    gate.wait();
    parked.join().unwrap();
    assert!(pending.join().is_ok());
    net.shutdown();
}

/// DELETE racing an in-flight batch: every accepted command still gets a
/// response line — Ok for winners, `unknown_session` for the rest; the
/// stream never hangs and the server stays healthy.
#[test]
fn delete_racing_inflight_batch_resolves_every_line() {
    let table = shared_table();
    let net = serve(&table, 2, 0, NetConfig::default());
    let addr = net.local_addr();
    let mut client = WireClient::connect(addr);
    let opened = client.request("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
    let session = opened.json()["session"].as_u64().unwrap();

    // A batch mixing slow maps and fast reads…
    let batch = concat!(
        "{\"cmd\": \"select_theme\", \"theme\": 0}\n",
        "{\"cmd\": \"map\"}\n",
        "{\"cmd\": \"depth\"}\n",
        "{\"cmd\": \"map\"}\n",
        "{\"cmd\": \"sql\"}\n",
    );
    client.send(
        "POST",
        &format!("/sessions/{session}/commands/batch"),
        Some(batch),
    );
    // …deleted from a second connection while the batch is in flight.
    #[allow(clippy::disallowed_methods)] // test harness thread, not engine parallelism
    let deleter = std::thread::spawn(move || {
        let mut other = WireClient::connect(addr);
        other.request("DELETE", &format!("/sessions/{session}"), None)
    });

    let streamed = client.read_response();
    let deleted = deleter.join().unwrap();
    assert!(
        deleted.status == 200 || deleted.status == 404,
        "unexpected delete status {}",
        deleted.status
    );
    // Depending on when the DELETE lands: the whole batch was rejected
    // up front (plain 404), or a stream of one line per *accepted*
    // command — each either a success envelope or an unknown_session
    // rejection, possibly capped by one "submitted": false line when the
    // close interrupted submission. The invariant under test: the stream
    // terminates and nothing is left unanswered.
    if streamed.status == 404 {
        assert_eq!(
            streamed.json()["error"]["code"].as_str(),
            Some("unknown_session")
        );
    } else {
        assert_eq!(streamed.status, 200);
        let lines = streamed.lines();
        assert!(!lines.is_empty() && lines.len() <= 5, "{lines:?}");
        for line in &lines {
            let ok = line.get("response").is_some_and(|r| !r.is_null());
            let closed = line["error"]["code"].as_str() == Some("unknown_session");
            assert!(ok || closed, "unexpected line {line:?}");
        }
        let interrupted = lines
            .last()
            .map(|l| l["error"]["detail"]["submitted"].as_bool())
            == Some(Some(false));
        if !interrupted {
            assert_eq!(lines.len(), 5, "all submitted, all answered: {lines:?}");
        }
    }
    // The server survived the race.
    let mut after = WireClient::connect(addr);
    assert_eq!(after.request("GET", "/healthz", None).status, 200);
    net.shutdown();
}
