//! Property-based tests for the statistics substrate.

use proptest::prelude::*;

use blaeu::stats::{
    dependency_matrix, describe, discretize, entropy, entropy_from_counts, histogram,
    joint_entropy, mutual_information, normalized_mutual_information, pearson, ranks, spearman,
    BinRule, BinStrategy, ColumnSummary, ContingencyTable, DependencyOptions, Histogram,
    MiNormalization,
};
use blaeu::store::{Column, TableBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn entropy_nonnegative_and_bounded(counts in prop::collection::vec(0u64..500, 1..24)) {
        let h = entropy_from_counts(&counts);
        prop_assert!(h >= 0.0);
        let support = counts.iter().filter(|&&c| c > 0).count();
        if support > 0 {
            prop_assert!(h <= (support as f64).ln() + 1e-9, "H {h} > ln support");
        }
    }

    #[test]
    fn mi_bounded_by_marginal_entropies(
        xs in prop::collection::vec(0u32..5, 4..200),
        ys in prop::collection::vec(0u32..4, 4..200),
    ) {
        let n = xs.len().min(ys.len());
        let x = blaeu::stats::DiscreteColumn::from_options(
            xs[..n].iter().map(|&c| Some(c)), 5);
        let y = blaeu::stats::DiscreteColumn::from_options(
            ys[..n].iter().map(|&c| Some(c)), 4);
        let ct = ContingencyTable::from_codes(&x, &y);
        let mi = mutual_information(&ct);
        let hx = entropy(&x);
        let hy = entropy(&y);
        prop_assert!(mi >= -1e-12);
        prop_assert!(mi <= hx.min(hy) + 1e-9, "MI {mi} > min(H) {}", hx.min(hy));
        // Normalizations stay in [0, 1].
        for norm in [MiNormalization::Min, MiNormalization::Max, MiNormalization::Sqrt] {
            let v = normalized_mutual_information(&ct, norm);
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // Joint entropy bounds: max(Hx, Hy) <= Hxy <= Hx + Hy.
        let hxy = joint_entropy(&ct);
        prop_assert!(hxy + 1e-9 >= hx.max(hy));
        prop_assert!(hxy <= hx + hy + 1e-9);
    }

    #[test]
    fn correlations_bounded_and_self_correlated(
        vals in prop::collection::vec(-1e4f64..1e4, 3..120),
    ) {
        let x: Vec<Option<f64>> = vals.iter().map(|&v| Some(v)).collect();
        if let Some(p) = pearson(&x, &x) {
            prop_assert!((p - 1.0).abs() < 1e-9, "self-pearson {p}");
        }
        if let Some(s) = spearman(&x, &x) {
            prop_assert!((s - 1.0).abs() < 1e-9, "self-spearman {s}");
        }
        // Against reversed values: symmetric bounds.
        let y: Vec<Option<f64>> = vals.iter().rev().map(|&v| Some(v)).collect();
        if let Some(p) = pearson(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn ranks_are_a_permutation_mean(vals in prop::collection::vec(-100.0f64..100.0, 1..80)) {
        let r = ranks(&vals);
        prop_assert_eq!(r.len(), vals.len());
        // Mean rank is (n+1)/2 regardless of ties.
        let mean = r.iter().sum::<f64>() / r.len() as f64;
        prop_assert!((mean - (r.len() as f64 + 1.0) / 2.0).abs() < 1e-9);
        // Monotone: larger value ⇒ rank not smaller.
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                if vals[i] < vals[j] {
                    prop_assert!(r[i] < r[j] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn discretize_covers_all_valid_rows(
        vals in prop::collection::vec(prop::option::of(-1e3f64..1e3), 1..200),
        bins in 2usize..12,
    ) {
        let col = Column::from_f64s(vals.iter().copied());
        let dc = discretize(&col, BinStrategy::EqualFrequency, BinRule::Fixed(bins));
        prop_assert_eq!(dc.len(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            let code = dc.get(i);
            prop_assert_eq!(code.is_some(), v.is_some());
            if let Some(c) = code {
                prop_assert!((c as usize) < dc.cardinality);
            }
        }
    }

    #[test]
    fn describe_consistent_with_data(
        vals in prop::collection::vec(prop::option::of(-1e3f64..1e3), 1..150),
    ) {
        let col = Column::from_f64s(vals.iter().copied());
        let ColumnSummary::Numeric(s) = describe(&col, 5) else {
            return Err(TestCaseError::fail("expected numeric"));
        };
        let present: Vec<f64> = vals.iter().flatten().copied().collect();
        prop_assert_eq!(s.count, present.len());
        prop_assert_eq!(s.nulls, vals.len() - present.len());
        if !present.is_empty() {
            let min = present.iter().copied().fold(f64::INFINITY, f64::min);
            let max = present.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(s.min, min);
            prop_assert_eq!(s.max, max);
            prop_assert!(s.min <= s.q1 && s.q1 <= s.median);
            prop_assert!(s.median <= s.q3 && s.q3 <= s.max);
            prop_assert!(s.std >= 0.0);
        }
    }

    #[test]
    fn histogram_counts_total(
        vals in prop::collection::vec(prop::option::of(-500.0f64..500.0), 1..150),
        bins in 1usize..12,
    ) {
        let col = Column::from_f64s(vals.iter().copied());
        let h = histogram(&col, bins);
        let present = vals.iter().flatten().count();
        prop_assert_eq!(h.total(), present);
        if let Histogram::Numeric { edges, counts, nulls } = &h {
            prop_assert_eq!(edges.len(), counts.len() + 1);
            prop_assert_eq!(*nulls, vals.len() - present);
            prop_assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn dependency_matrix_properties(
        seedcol in prop::collection::vec(-100.0f64..100.0, 30..120),
    ) {
        // Three columns: y = 2x (dependent), z arbitrary-but-fixed.
        let x = seedcol.clone();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let z: Vec<f64> = x.iter().enumerate().map(|(i, _)| ((i * 37) % 17) as f64).collect();
        let t = TableBuilder::new("p")
            .column("x", Column::dense_f64(x))
            .unwrap()
            .column("y", Column::dense_f64(y))
            .unwrap()
            .column("z", Column::dense_f64(z))
            .unwrap()
            .build()
            .unwrap();
        let dm =
            dependency_matrix(&t.into(), &["x", "y", "z"], &DependencyOptions::default()).unwrap();
        for i in 0..3 {
            prop_assert!((dm.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..3 {
                let v = dm.get(i, j);
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!((v - dm.get(j, i)).abs() < 1e-12);
            }
        }
        // x~y at least as dependent as x~z (y is a function of x).
        prop_assert!(dm.get(0, 1) + 1e-9 >= dm.get(0, 2));
    }
}
