//! Acceptance tests for the asynchronous session tier: overlap of slow
//! and fast commands across sessions, FIFO execution within a session,
//! cache purity (hit ≡ miss, bit for bit), and determinism of response
//! streams across pool sizes and cache on/off.

use std::sync::Arc;

use blaeu::prelude::*;

fn shared_table() -> Arc<Table> {
    Arc::new(
        hollywood(&HollywoodConfig {
            nrows: 500,
            ..HollywoodConfig::default()
        })
        .unwrap()
        .0,
    )
}

fn server_with(threads: usize, cache_capacity: usize) -> AsyncSessionServer {
    AsyncSessionServer::new(ServerConfig {
        threads,
        queue_capacity: 64,
        cache_capacity,
        ..ServerConfig::default()
    })
}

/// The acceptance stress: ≥ 8 sessions mixing slow (`Map`) and fast
/// (`Highlight`) commands. Every fast response must complete before the
/// slowest map finishes (async overlap — under the old synchronous
/// `par_with` batch, the whole batch returned together), and each
/// session's responses must arrive in submission order.
#[test]
fn stress_slow_maps_overlap_fast_highlights() {
    let srv = server_with(8, 0); // cache off: every Map really recomputes
    let table = shared_table();
    let ids: Vec<u64> = (0..8)
        .map(|_| {
            srv.open_session(Arc::clone(&table), ExplorerConfig::default())
                .unwrap()
        })
        .collect();
    // Every session needs an active map before Map/Highlight make sense.
    for &id in &ids {
        let r = srv.request(id, Command::SelectTheme(0)).unwrap();
        assert!(matches!(r, Response::Map(_)));
    }

    let (slow_ids, fast_ids) = ids.split_at(4);
    // Submit the slow re-maps first so they claim workers, then the fast
    // highlights — which must overtake them.
    let slow: Vec<_> = slow_ids
        .iter()
        .map(|&id| (id, srv.submit(id, Command::Map).unwrap()))
        .collect();
    let fast: Vec<_> = fast_ids
        .iter()
        .map(|&id| {
            (
                id,
                srv.submit(id, Command::Highlight("film".into())).unwrap(),
            )
        })
        .collect();

    // Compare FULFILMENT stamps (recorded by the server when each
    // response became ready), not join-loop wall clocks — join order
    // says nothing about execution order.
    let fast_done: Vec<std::time::Instant> = fast
        .into_iter()
        .map(|(_, h)| {
            h.wait();
            let at = h.finished_at().expect("waited");
            assert!(matches!(h.join().unwrap(), Response::Highlight(_)));
            at
        })
        .collect();
    let slow_done: Vec<std::time::Instant> = slow
        .into_iter()
        .map(|(_, h)| {
            h.wait();
            let at = h.finished_at().expect("waited");
            assert!(matches!(h.join().unwrap(), Response::Map(_)));
            at
        })
        .collect();
    let slowest_map = slow_done.iter().max().unwrap();
    for (i, done) in fast_done.iter().enumerate() {
        assert!(
            done < slowest_map,
            "fast highlight {i} completed after the slowest map — no overlap"
        );
    }
    for id in ids {
        srv.close(id).unwrap();
    }
}

/// FIFO within a session, measured on the handles themselves: a chain
/// whose steps only work in order, with non-decreasing completion
/// stamps.
#[test]
fn per_session_responses_arrive_in_submission_order() {
    let srv = server_with(4, 0);
    let table = shared_table();
    let ids: Vec<u64> = (0..4)
        .map(|_| {
            srv.open_session(Arc::clone(&table), ExplorerConfig::default())
                .unwrap()
        })
        .collect();
    let pipelines: Vec<(u64, Vec<blaeu::server::ResponseHandle>)> = ids
        .iter()
        .map(|&id| {
            let handles = vec![
                srv.submit(id, Command::SelectTheme(0)).unwrap(),
                srv.submit(id, Command::Zoom(0)).unwrap(),
                srv.submit(id, Command::Highlight("film".into())).unwrap(),
                srv.submit(id, Command::Rollback).unwrap(),
                srv.submit(id, Command::Depth).unwrap(),
            ];
            (id, handles)
        })
        .collect();
    for (id, handles) in pipelines {
        // Fulfilment stamps (recorded by the server, not by this join
        // loop) must be non-decreasing in submission order.
        let mut last = None;
        let results: Vec<Response> = handles
            .into_iter()
            .map(|h| {
                h.wait();
                let at = h.finished_at().expect("waited");
                let r = h.join().unwrap_or_else(|e| panic!("session {id}: {e}"));
                if let Some(prev) = last {
                    assert!(at >= prev, "session {id} responses out of order");
                }
                last = Some(at);
                r
            })
            .collect();
        assert!(matches!(results[0], Response::Map(_)));
        assert!(
            matches!(results[1], Response::Map(_)),
            "zoom can only succeed after its session's select_theme"
        );
        assert!(matches!(results[2], Response::Highlight(_)));
        assert!(matches!(results[3], Response::Depth(2)));
        assert!(matches!(results[4], Response::Depth(2)));
    }
}

/// One exploration script, as digests of its response stream.
fn run_script(srv: &AsyncSessionServer, table: &Arc<Table>) -> Vec<u64> {
    let id = srv
        .open_session(Arc::clone(table), ExplorerConfig::default())
        .unwrap();
    let script = vec![
        Command::Themes,
        Command::SelectTheme(0),
        Command::Highlight("film".into()),
        Command::Zoom(0),
        Command::Map, // re-map of the same state: the canonical cache hit
        Command::Sql,
        Command::RegionDetail {
            region: 0,
            sample_rows: 5,
        },
        Command::Rollback,
        Command::Depth,
    ];
    let handles: Vec<_> = script
        .into_iter()
        .map(|cmd| srv.submit(id, cmd).unwrap())
        .collect();
    let digests = handles
        .into_iter()
        .map(|h| h.join().unwrap().digest())
        .collect();
    srv.close(id).unwrap();
    digests
}

/// The cache must be a pure win: the response stream with caching on is
/// bit-identical to the stream with caching off, and a cached re-query
/// returns bit-identical payloads while actually hitting.
#[test]
fn cache_hits_are_bit_identical_to_misses() {
    let table = shared_table();
    let uncached = server_with(2, 0);
    let cached = server_with(2, 64);

    let cold = run_script(&uncached, &table);
    let warmup = run_script(&cached, &table); // populates the cache
    let warm = run_script(&cached, &table); // replays against the cache

    assert_eq!(cold, warmup, "caching changed results (miss path)");
    assert_eq!(cold, warm, "caching changed results (hit path)");

    let stats = cached.cache_stats().unwrap();
    assert!(
        stats.hits >= 4,
        "the warm replay should hit (themes + select + zoom re-map): {stats:?}"
    );
    assert!(stats.misses >= 1);
}

/// Per-session response streams must be bit-identical whatever the pool
/// size — 1 worker or 8, the stream is a pure function of the command
/// history (the CI determinism job additionally runs this whole suite at
/// `BLAEU_THREADS` 1 and 8).
#[test]
fn response_streams_identical_across_pool_sizes() {
    let table = shared_table();
    let narrow = run_script(&server_with(1, 0), &table);
    let wide = run_script(&server_with(8, 0), &table);
    assert_eq!(narrow, wide);
}

/// Closing sessions while their queues still hold commands must resolve
/// every outstanding handle (Ok for commands that won the race,
/// UnknownSession for the rest) — never hang, never strand a handle.
#[test]
fn concurrent_close_resolves_every_pending_handle() {
    let srv = server_with(2, 0);
    let table = shared_table();
    let ids: Vec<u64> = (0..8)
        .map(|_| {
            srv.open_session(Arc::clone(&table), ExplorerConfig::default())
                .unwrap()
        })
        .collect();
    // Queue a slow command plus fast followers on every session, then
    // close them all while the pool is still chewing.
    let handles: Vec<_> = ids
        .iter()
        .flat_map(|&id| {
            vec![
                (id, srv.submit(id, Command::SelectTheme(0)).unwrap()),
                (id, srv.submit(id, Command::Depth).unwrap()),
                (id, srv.submit(id, Command::Sql).unwrap()),
            ]
        })
        .collect();
    for &id in &ids {
        srv.close(id).unwrap();
    }
    for (id, handle) in handles {
        match handle.join() {
            Ok(_) => {}
            Err(BlaeuError::UnknownSession(s)) => assert_eq!(s, id),
            Err(other) => panic!("unexpected error for session {id}: {other}"),
        }
    }
    assert!(srv.is_empty());
    // Closed sessions reject new work.
    for id in ids {
        assert!(matches!(
            srv.submit(id, Command::Depth),
            Err(BlaeuError::UnknownSession(_))
        ));
    }
}
