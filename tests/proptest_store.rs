//! Property-based tests for the storage substrate.

use proptest::prelude::*;

use blaeu::store::{
    read_csv_str, uniform_sample, write_csv_string, Bitmap, Column, CsvOptions, MultiScaleSampler,
    Predicate, Table, TableBuilder,
};

fn table_from(values: &[Option<f64>], cats: &[Option<u8>]) -> Table {
    let cat_strings: Vec<Option<String>> = cats
        .iter()
        .map(|o| o.map(|c| format!("c{}", c % 5)))
        .collect();
    TableBuilder::new("prop")
        .column("x", Column::from_f64s(values.iter().copied()))
        .unwrap()
        .column(
            "cat",
            Column::from_strs(cat_strings.iter().map(|o| o.as_deref())),
        )
        .unwrap()
        .build()
        .unwrap()
}

proptest! {
    #[test]
    fn bitmap_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let bm = Bitmap::from_bools(&bits);
        prop_assert_eq!(bm.len(), bits.len());
        prop_assert_eq!(bm.count_ones(), bits.iter().filter(|&&b| b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
        // Double complement is identity.
        let mut twice = bm.clone();
        twice.not_assign();
        twice.not_assign();
        prop_assert_eq!(twice, bm.clone());
        // Indices roundtrip.
        let idx = bm.to_indices();
        prop_assert_eq!(Bitmap::from_indices(bits.len(), &idx), bm);
    }

    #[test]
    fn bitmap_and_or_de_morgan(
        a in prop::collection::vec(any::<bool>(), 64..200),
    ) {
        let b: Vec<bool> = a.iter().map(|&x| !x).collect();
        let (ba, bb) = (Bitmap::from_bools(&a), Bitmap::from_bools(&b));
        // NOT(a AND b) == NOT a OR NOT b
        let mut lhs = ba.clone();
        lhs.and_assign(&bb);
        lhs.not_assign();
        let mut na = ba.clone();
        na.not_assign();
        let mut nb = bb.clone();
        nb.not_assign();
        let mut rhs = na;
        rhs.or_assign(&nb);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn uniform_sample_invariants(n in 1usize..500, k in 0usize..600, seed in any::<u64>()) {
        let s = uniform_sample(n, k, seed);
        prop_assert_eq!(s.len(), k.min(n));
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        prop_assert!(s.iter().all(|&i| (i as usize) < n));
    }

    #[test]
    fn multiscale_nesting(n in 1usize..400, k1 in 0usize..400, k2 in 0usize..400, seed in any::<u64>()) {
        let (small, big) = (k1.min(k2), k1.max(k2));
        let ms = MultiScaleSampler::new(n, seed);
        let s: std::collections::HashSet<u32> = ms.sample(small).into_iter().collect();
        let b: std::collections::HashSet<u32> = ms.sample(big).into_iter().collect();
        prop_assert!(s.is_subset(&b));
    }

    #[test]
    fn predicate_partition(
        values in prop::collection::vec(prop::option::of(-100.0f64..100.0), 1..120),
        cats in prop::collection::vec(prop::option::of(any::<u8>()), 1..120),
        threshold in -100.0f64..100.0,
    ) {
        let n = values.len().min(cats.len());
        let t = table_from(&values[..n], &cats[..n]);
        // lt, ge and IsNull partition the rows exactly.
        let lt = Predicate::lt("x", threshold).select(&t).unwrap();
        let ge = Predicate::ge("x", threshold).select(&t).unwrap();
        let null = Predicate::IsNull { column: "x".into() }.select(&t).unwrap();
        let mut all: Vec<u32> = lt.iter().chain(&ge).chain(&null).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn take_preserves_values(
        values in prop::collection::vec(prop::option::of(-50.0f64..50.0), 1..80),
        cats in prop::collection::vec(prop::option::of(any::<u8>()), 1..80),
    ) {
        let n = values.len().min(cats.len());
        let t = table_from(&values[..n], &cats[..n]);
        let idx: Vec<u32> = (0..n as u32).rev().collect();
        let rev = t.take(&idx).unwrap();
        for i in 0..n {
            prop_assert_eq!(rev.row(i).unwrap(), t.row(n - 1 - i).unwrap());
        }
    }

    #[test]
    fn csv_roundtrip(
        values in prop::collection::vec(prop::option::of(-1e6f64..1e6), 1..60),
        labels in prop::collection::vec(
            prop::option::of("[a-z,\"\n ]{0,12}"), 1..60),
    ) {
        let n = values.len().min(labels.len());
        let t = TableBuilder::new("csv")
            .column("num", Column::from_f64s(values[..n].iter().copied()))
            .unwrap()
            .column("text", Column::from_strs(labels[..n].iter().map(|o| o.as_deref())))
            .unwrap()
            .build()
            .unwrap();
        let rendered = write_csv_string(&t, &CsvOptions::default()).unwrap();
        let back = read_csv_str("csv", &rendered, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.nrows(), t.nrows());
        for row in 0..n {
            // Numeric cells roundtrip through Display within f64 precision;
            // NULL-like strings ("", "NA") legitimately become NULL.
            let orig = t.value(row, "num").unwrap();
            let got = back.value(row, "num").unwrap();
            match (orig.as_f64(), got.as_f64()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() <= a.abs() * 1e-12 + 1e-12),
                (None, None) => {}
                other => prop_assert!(false, "numeric mismatch {other:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_results_subset_of_table(
        values in prop::collection::vec(prop::option::of(-100.0f64..100.0), 1..100),
        lo in -100.0f64..0.0,
        hi in 0.0f64..100.0,
    ) {
        let cats: Vec<Option<u8>> = (0..values.len()).map(|i| Some(i as u8)).collect();
        let t = table_from(&values, &cats);
        let q = blaeu::store::SelectProject::filtered(Predicate::range_co("x", lo, hi));
        let out = q.execute(&t).unwrap();
        prop_assert!(out.nrows() <= t.nrows());
        for row in 0..out.nrows() {
            let v = out.value(row, "x").unwrap().as_f64().unwrap();
            prop_assert!(v >= lo && v < hi);
        }
    }
}
