//! Property-based tests for the storage substrate.

use proptest::prelude::*;

use blaeu::store::{
    read_csv_str, read_snapshot_bytes, uniform_sample, write_csv_string, write_snapshot_bytes,
    Bitmap, Column, CsvOptions, MultiScaleSampler, Predicate, StoreError, Table, TableBuilder,
};

fn table_from(values: &[Option<f64>], cats: &[Option<u8>]) -> Table {
    let cat_strings: Vec<Option<String>> = cats
        .iter()
        .map(|o| o.map(|c| format!("c{}", c % 5)))
        .collect();
    TableBuilder::new("prop")
        .column("x", Column::from_f64s(values.iter().copied()))
        .unwrap()
        .column(
            "cat",
            Column::from_strs(cat_strings.iter().map(|o| o.as_deref())),
        )
        .unwrap()
        .build()
        .unwrap()
}

proptest! {
    #[test]
    fn bitmap_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let bm = Bitmap::from_bools(&bits);
        prop_assert_eq!(bm.len(), bits.len());
        prop_assert_eq!(bm.count_ones(), bits.iter().filter(|&&b| b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
        // Double complement is identity.
        let mut twice = bm.clone();
        twice.not_assign();
        twice.not_assign();
        prop_assert_eq!(twice, bm.clone());
        // Indices roundtrip.
        let idx = bm.to_indices();
        prop_assert_eq!(Bitmap::from_indices(bits.len(), &idx), bm);
    }

    #[test]
    fn bitmap_and_or_de_morgan(
        a in prop::collection::vec(any::<bool>(), 64..200),
    ) {
        let b: Vec<bool> = a.iter().map(|&x| !x).collect();
        let (ba, bb) = (Bitmap::from_bools(&a), Bitmap::from_bools(&b));
        // NOT(a AND b) == NOT a OR NOT b
        let mut lhs = ba.clone();
        lhs.and_assign(&bb);
        lhs.not_assign();
        let mut na = ba.clone();
        na.not_assign();
        let mut nb = bb.clone();
        nb.not_assign();
        let mut rhs = na;
        rhs.or_assign(&nb);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn bitmap_word_ops_match_per_bit(
        len_class in 0usize..8,
        arbitrary_len in 1usize..200,
        seed in any::<u64>(),
        lo_sel in any::<u64>(),
        hi_sel in any::<u64>(),
    ) {
        // Word-wise and/or/count/iter must agree with the per-bit
        // reference at every length class: empty, one-under/at/one-over
        // a word boundary, and arbitrary non-aligned tails.
        let len = match len_class {
            0 => 0,
            1 => 63,
            2 => 64,
            3 => 65,
            _ => arbitrary_len,
        };
        let mut state = seed;
        let mut next_bit = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) & 1 == 1
        };
        let a: Vec<bool> = (0..len).map(|_| next_bit()).collect();
        let b: Vec<bool> = (0..len).map(|_| next_bit()).collect();
        let (ba, bb) = (Bitmap::from_bools(&a), Bitmap::from_bools(&b));
        let and = ba.and(&bb);
        let or = ba.or(&bb);
        prop_assert_eq!(and.len(), len);
        prop_assert_eq!(or.len(), len);
        for i in 0..len {
            prop_assert_eq!(and.get(i), a[i] && b[i]);
            prop_assert_eq!(or.get(i), a[i] || b[i]);
        }
        let ones: Vec<usize> = ba.iter_ones().collect();
        let expect: Vec<usize> = (0..len).filter(|&i| a[i]).collect();
        prop_assert_eq!(ones, expect);
        prop_assert_eq!(ba.count_ones(), a.iter().filter(|&&x| x).count());
        // An arbitrary (possibly empty, possibly word-straddling) subrange.
        let lo = if len == 0 { 0 } else { (lo_sel as usize) % (len + 1) };
        let hi = lo + if len == lo { 0 } else { (hi_sel as usize) % (len - lo + 1) };
        prop_assert_eq!(
            ba.count_ones_range(lo, hi),
            a[lo..hi].iter().filter(|&&x| x).count()
        );
    }

    #[test]
    fn snapshot_roundtrip_and_corruption(
        nums in prop::collection::vec(prop::option::of(-1e6f64..1e6), 0..60),
        ints in prop::collection::vec(prop::option::of(any::<i64>()), 0..60),
        bools in prop::collection::vec(prop::option::of(any::<bool>()), 0..60),
        cats in prop::collection::vec(prop::option::of(0u8..6), 0..60),
    ) {
        // All four dtypes, nulls everywhere, possibly zero rows.
        let n = nums.len().min(ints.len()).min(bools.len()).min(cats.len());
        let cat_strings: Vec<Option<String>> = cats[..n]
            .iter()
            .map(|o| o.map(|c| format!("level-{c}")))
            .collect();
        let t = TableBuilder::new("snap")
            .column("f", Column::from_f64s(nums[..n].iter().copied()))
            .unwrap()
            .column("i", Column::from_i64s(ints[..n].iter().copied()))
            .unwrap()
            .column("b", Column::from_bools(bools[..n].iter().copied()))
            .unwrap()
            .column("c", Column::from_strs(cat_strings.iter().map(|o| o.as_deref())))
            .unwrap()
            .build()
            .unwrap();
        let bytes = write_snapshot_bytes(&t);
        let back = read_snapshot_bytes(&bytes).unwrap();
        prop_assert_eq!(back, t);

        // A corrupt header is a typed error, not a panic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        prop_assert!(matches!(
            read_snapshot_bytes(&bad_magic),
            Err(StoreError::Snapshot { .. })
        ));
        // A flipped body byte fails the checksum.
        if bytes.len() > 32 {
            let mut bad_body = bytes.clone();
            let last = bad_body.len() - 1;
            bad_body[last] ^= 0x01;
            prop_assert!(matches!(
                read_snapshot_bytes(&bad_body),
                Err(StoreError::Snapshot { .. })
            ));
        }
        // Truncation anywhere is detected (the header states the length).
        prop_assert!(matches!(
            read_snapshot_bytes(&bytes[..bytes.len() / 2]),
            Err(StoreError::Snapshot { .. })
        ));
    }

    #[test]
    fn uniform_sample_invariants(n in 1usize..500, k in 0usize..600, seed in any::<u64>()) {
        let s = uniform_sample(n, k, seed);
        prop_assert_eq!(s.len(), k.min(n));
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        prop_assert!(s.iter().all(|&i| (i as usize) < n));
    }

    #[test]
    fn multiscale_nesting(n in 1usize..400, k1 in 0usize..400, k2 in 0usize..400, seed in any::<u64>()) {
        let (small, big) = (k1.min(k2), k1.max(k2));
        let ms = MultiScaleSampler::new(n, seed);
        let s: std::collections::HashSet<u32> = ms.sample(small).into_iter().collect();
        let b: std::collections::HashSet<u32> = ms.sample(big).into_iter().collect();
        prop_assert!(s.is_subset(&b));
    }

    #[test]
    fn predicate_partition(
        values in prop::collection::vec(prop::option::of(-100.0f64..100.0), 1..120),
        cats in prop::collection::vec(prop::option::of(any::<u8>()), 1..120),
        threshold in -100.0f64..100.0,
    ) {
        let n = values.len().min(cats.len());
        let t = table_from(&values[..n], &cats[..n]);
        // lt, ge and IsNull partition the rows exactly.
        let lt = Predicate::lt("x", threshold).select(&t).unwrap();
        let ge = Predicate::ge("x", threshold).select(&t).unwrap();
        let null = Predicate::IsNull { column: "x".into() }.select(&t).unwrap();
        let mut all: Vec<u32> = lt.iter().chain(&ge).chain(&null).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn take_preserves_values(
        values in prop::collection::vec(prop::option::of(-50.0f64..50.0), 1..80),
        cats in prop::collection::vec(prop::option::of(any::<u8>()), 1..80),
    ) {
        let n = values.len().min(cats.len());
        let t = table_from(&values[..n], &cats[..n]);
        let idx: Vec<u32> = (0..n as u32).rev().collect();
        let rev = t.take(&idx).unwrap();
        for i in 0..n {
            prop_assert_eq!(rev.row(i).unwrap(), t.row(n - 1 - i).unwrap());
        }
    }

    #[test]
    fn csv_roundtrip(
        values in prop::collection::vec(prop::option::of(-1e6f64..1e6), 1..60),
        labels in prop::collection::vec(
            prop::option::of("[a-z,\"\n ]{0,12}"), 1..60),
    ) {
        let n = values.len().min(labels.len());
        let t = TableBuilder::new("csv")
            .column("num", Column::from_f64s(values[..n].iter().copied()))
            .unwrap()
            .column("text", Column::from_strs(labels[..n].iter().map(|o| o.as_deref())))
            .unwrap()
            .build()
            .unwrap();
        let rendered = write_csv_string(&t, &CsvOptions::default()).unwrap();
        let back = read_csv_str("csv", &rendered, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.nrows(), t.nrows());
        for row in 0..n {
            // Numeric cells roundtrip through Display within f64 precision;
            // NULL-like strings ("", "NA") legitimately become NULL.
            let orig = t.value(row, "num").unwrap();
            let got = back.value(row, "num").unwrap();
            match (orig.as_f64(), got.as_f64()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() <= a.abs() * 1e-12 + 1e-12),
                (None, None) => {}
                other => prop_assert!(false, "numeric mismatch {other:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_results_subset_of_table(
        values in prop::collection::vec(prop::option::of(-100.0f64..100.0), 1..100),
        lo in -100.0f64..0.0,
        hi in 0.0f64..100.0,
    ) {
        let cats: Vec<Option<u8>> = (0..values.len()).map(|i| Some(i as u8)).collect();
        let t = table_from(&values, &cats);
        let q = blaeu::store::SelectProject::filtered(Predicate::range_co("x", lo, hi));
        let out = q.execute(&t).unwrap();
        prop_assert!(out.nrows() <= t.nrows());
        for row in 0..out.nrows() {
            let v = out.value(row, "x").unwrap().as_f64().unwrap();
            prop_assert!(v >= lo && v < hi);
        }
    }
}
