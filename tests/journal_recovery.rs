//! Restart recovery over the wire: a journaled server is driven through
//! real HTTP sessions, killed without warning (drop, no close), and a
//! fresh server over the same journal directory must come back with the
//! same sessions, the same state (digest-checked continuation), a warm
//! analysis cache, a streamable `/sessions/:id/history`, and journal
//! counters in `/stats`. Cleanly closed sessions must NOT resurrect.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use blaeu::prelude::*;
use serde_json::Value;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "blaeu-journal-recovery-{}-{label}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn shared_table() -> Arc<Table> {
    Arc::new(
        hollywood(&HollywoodConfig {
            nrows: 400,
            ..HollywoodConfig::default()
        })
        .unwrap()
        .0,
    )
}

fn journaled_engine(dir: &Path, cache: usize) -> Arc<AsyncSessionServer> {
    Arc::new(
        AsyncSessionServer::try_new(ServerConfig {
            threads: 4,
            queue_capacity: 64,
            cache_capacity: cache,
            journal_dir: Some(dir.to_path_buf()),
            ..ServerConfig::default()
        })
        .expect("journal dir is writable"),
    )
}

/// Minimal keep-alive HTTP client (same shape as tests/net_transport.rs).
struct WireClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl WireClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("loopback connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        WireClient {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: blaeu\r\n");
        if let Some(body) = body {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes()).unwrap();
        if let Some(body) = body {
            self.writer.write_all(body.as_bytes()).unwrap();
        }
        self.writer.flush().unwrap();

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut content_length: Option<usize> = None;
        let mut chunked = false;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).unwrap();
            if header.trim().is_empty() {
                break;
            }
            let lower = header.to_ascii_lowercase();
            if let Some(v) = lower.strip_prefix("content-length:") {
                content_length = Some(v.trim().parse().unwrap());
            }
            if lower.starts_with("transfer-encoding:") && lower.contains("chunked") {
                chunked = true;
            }
        }
        let body = if chunked {
            let mut out = Vec::new();
            loop {
                let mut size_line = String::new();
                self.reader.read_line(&mut size_line).unwrap();
                let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
                let mut chunk = vec![0u8; size + 2];
                self.reader.read_exact(&mut chunk).unwrap();
                if size == 0 {
                    break;
                }
                out.extend_from_slice(&chunk[..size]);
            }
            String::from_utf8(out).unwrap()
        } else {
            let mut body = vec![0u8; content_length.expect("framed response")];
            self.reader.read_exact(&mut body).unwrap();
            String::from_utf8(body).unwrap()
        };
        (status, body)
    }

    fn json(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
        let (status, body) = self.request(method, path, body);
        let value =
            serde_json::from_str(&body).unwrap_or_else(|e| panic!("bad body {body:?}: {e}"));
        (status, value)
    }
}

/// The wire exploration that gets recorded: a theme map (an analysis
/// the cache can warm from), a highlight, reads, an undo.
const SCRIPT: &[&str] = &[
    r#"{"cmd": "themes"}"#,
    r#"{"cmd": "select_theme", "theme": 0}"#,
    r#"{"cmd": "highlight", "column": "film"}"#,
    r#"{"cmd": "depth"}"#,
    r#"{"cmd": "rollback"}"#,
    r#"{"cmd": "select_theme", "theme": 1}"#,
];

#[test]
fn killed_server_recovers_sessions_history_and_warm_cache_over_the_wire() {
    let table = shared_table();
    let dir = scratch("wire");

    // ── First life: drive two sessions over the wire, close only one.
    let engine = journaled_engine(&dir, 64);
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&engine), NetConfig::default()).unwrap();
    net.register_table("hollywood", Arc::clone(&table));
    let mut client = WireClient::connect(net.local_addr());

    let (status, opened) = client.json("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
    assert_eq!(status, 201, "{opened:?}");
    let survivor = opened["session"].as_u64().unwrap();
    let mut recorded_digests = Vec::new();
    for body in SCRIPT {
        let (status, response) = client.json(
            "POST",
            &format!("/sessions/{survivor}/commands"),
            Some(body),
        );
        assert_eq!(status, 200, "{body} -> {response:?}");
        recorded_digests.push(response["digest"].as_str().unwrap().to_owned());
    }

    // A second session runs one command and closes cleanly — it must
    // stay dead after recovery.
    let (_, opened) = client.json("POST", "/sessions", Some(r#"{"table": "hollywood"}"#));
    let closed = opened["session"].as_u64().unwrap();
    let (status, _) = client.json(
        "POST",
        &format!("/sessions/{closed}/commands"),
        Some(r#"{"cmd": "depth"}"#),
    );
    assert_eq!(status, 200);
    let (status, _) = client.json("DELETE", &format!("/sessions/{closed}"), None);
    assert_eq!(status, 200);

    // Journal counters are live on /stats while the first server runs.
    let (_, stats) = client.json("GET", "/stats", None);
    assert!(stats["journal"]["records"].as_u64().unwrap() >= SCRIPT.len() as u64);
    assert_eq!(stats["journal"]["sessions"].as_u64(), Some(1), "{stats:?}");

    // ── Kill: no close, no flush beyond what the journal already wrote.
    net.shutdown();
    drop(engine);

    // ── Second life: same directory, fresh engine; recover, then serve.
    let engine = journaled_engine(&dir, 64);
    let tables = HashMap::from([("hollywood".to_owned(), Arc::clone(&table))]);
    let report = engine.recover(&tables).unwrap();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.sessions, vec![survivor], "only the unclosed session");
    assert_eq!(report.replayed, SCRIPT.len() as u64);
    // The DELETE already removed the closed session's journal file in
    // the first life, so recovery never even sees it.
    assert_eq!(report.closed, 0);

    // Replaying SelectTheme twice (0, then 1) populated the shared
    // cache; the recovered server starts warm, not cold.
    let stats = engine.cache_stats().expect("cache configured");
    assert!(stats.misses > 0, "replay populates the cache: {stats:?}");

    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&engine), NetConfig::default()).unwrap();
    net.register_table("hollywood", Arc::clone(&table));
    let mut client = WireClient::connect(net.local_addr());

    // GET /sessions shows the recovered session at its journal sequence
    // (open is seq 0, commands 1..=N).
    let (status, listed) = client.json("GET", "/sessions", None);
    assert_eq!(status, 200);
    let sessions = listed["sessions"].as_array().unwrap();
    assert_eq!(sessions.len(), 1, "{listed:?}");
    assert_eq!(sessions[0]["session"].as_u64(), Some(survivor));
    assert_eq!(
        sessions[0]["journal_seq"].as_u64(),
        Some(SCRIPT.len() as u64)
    );

    // The history endpoint streams the journal as NDJSON: one `open`
    // record plus one versioned record per command, digests verbatim.
    let (status, history) = client.request("GET", &format!("/sessions/{survivor}/history"), None);
    assert_eq!(status, 200);
    let lines: Vec<Value> = history
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 1 + SCRIPT.len());
    assert_eq!(lines[0]["kind"].as_str(), Some("open"));
    assert_eq!(lines[0]["table"].as_str(), Some("hollywood"));
    for (i, line) in lines[1..].iter().enumerate() {
        assert_eq!(line["v"].as_u64(), Some(1), "{line:?}");
        assert_eq!(line["kind"].as_str(), Some("command"));
        assert_eq!(line["seq"].as_u64(), Some(i as u64 + 1));
        assert_eq!(
            line["digest"].as_str(),
            Some(recorded_digests[i].as_str()),
            "recorded digest survives restart verbatim"
        );
    }

    // Continuation: the recovered session answers a repeated analysis
    // with the SAME digest the first life recorded — served from the
    // warmed cache (hits increase), bit-identical on the wire.
    let hits_before = engine.cache_stats().unwrap().hits;
    let (status, response) = client.json(
        "POST",
        &format!("/sessions/{survivor}/commands"),
        Some(r#"{"cmd": "rollback"}"#),
    );
    assert_eq!(status, 200, "{response:?}");
    let (status, response) = client.json(
        "POST",
        &format!("/sessions/{survivor}/commands"),
        Some(r#"{"cmd": "select_theme", "theme": 0}"#),
    );
    assert_eq!(status, 200, "{response:?}");
    assert_eq!(
        response["digest"].as_str().unwrap(),
        recorded_digests[1],
        "recovered continuation diverged from the first life"
    );
    assert!(
        engine.cache_stats().unwrap().hits > hits_before,
        "the repeated analysis must hit the recovered cache"
    );

    // The closed session stayed dead: no journal file, 404 on history.
    let (status, body) = client.json("GET", &format!("/sessions/{closed}/history"), None);
    assert_eq!(status, 404, "{body:?}");
    assert_eq!(body["error"]["code"].as_str(), Some("unknown_session"));

    net.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The in-process half of the same contract, across pool sizes: the
/// `figures`-style digest invariant extended to recovery — a recovered
/// engine's continuation digests are identical at `threads` 1 and 8,
/// journaling on, cache on and off.
#[test]
fn recovered_continuation_digests_identical_across_thread_counts() {
    let table = shared_table();
    let script = [
        Command::SelectTheme(0),
        Command::Highlight("film".into()),
        Command::Rollback,
    ];
    let trailer = [Command::SelectTheme(1), Command::Sql, Command::Depth];
    let mut per_thread_digests: Vec<Vec<u64>> = Vec::new();
    for threads in [1usize, 8] {
        for cache in [0usize, 64] {
            let dir = scratch(&format!("parity-{threads}-{cache}"));
            let first = AsyncSessionServer::try_new(ServerConfig {
                threads,
                queue_capacity: 64,
                cache_capacity: cache,
                journal_dir: Some(dir.to_path_buf()),
                ..ServerConfig::default()
            })
            .unwrap();
            let id = first
                .open_named_session("hollywood", Arc::clone(&table), ExplorerConfig::default())
                .unwrap();
            for cmd in &script {
                first.request(id, cmd.clone()).unwrap();
            }
            drop(first);

            let second = AsyncSessionServer::try_new(ServerConfig {
                threads,
                queue_capacity: 64,
                cache_capacity: cache,
                journal_dir: Some(dir.to_path_buf()),
                ..ServerConfig::default()
            })
            .unwrap();
            let tables = HashMap::from([("hollywood".to_owned(), Arc::clone(&table))]);
            let report = second.recover(&tables).unwrap();
            assert!(report.errors.is_empty(), "{:?}", report.errors);
            let digests: Vec<u64> = trailer
                .iter()
                .map(|cmd| second.request(id, cmd.clone()).unwrap().digest())
                .collect();
            per_thread_digests.push(digests);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
    // All four runs (threads × cache) produced one digest stream.
    for later in &per_thread_digests[1..] {
        assert_eq!(
            later, &per_thread_digests[0],
            "continuation digests diverged across pools/cache modes"
        );
    }
}
