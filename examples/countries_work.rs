//! Demo scenario 2 — Countries & Work (§4.2; the paper's running example).
//!
//! Reproduces the Figure 1 walkthrough: list themes (1a), map the labor
//! theme (1b), zoom into the pleasant low-hours/high-income region and
//! highlight country names — "Switzerland, Canada and Norway appear as
//! countries with high incomes and relatively low working hours" (1c) —
//! then project onto the unemployment theme (1d). Also answers the demo's
//! promise: "our users will discover why working in Canada is generally a
//! good idea".
//!
//! ```sh
//! cargo run --release --example countries_work
//! ```

use blaeu::core::render::{render_map, render_status, render_themes};
use blaeu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's dataset: 6,823 regions, 378 indicators, 31 countries.
    let (table, _truth) = oecd(&OecdConfig::default())?;
    println!(
        "Countries & Work: {} regions x {} columns\n",
        table.nrows(),
        table.ncols()
    );

    let mut explorer = Explorer::open(table, ExplorerConfig::default())?;

    // Figure 1a: the list of themes.
    println!("{}", render_themes(explorer.theme_set(), 4));

    // Figure 1b: the data map of the labor theme.
    let labor = explorer
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c == "pct_employees_long_hours"))
        .expect("labor theme detected");
    let map = explorer.select_theme(labor)?;
    println!("{}", render_map(map));

    // Figure 1c: zoom into the low-hours / high-income region and
    // highlight the countries. Find the leaf whose description mentions a
    // low long-hours bound and a high income bound.
    let leaves = map.leaves();
    let target = leaves
        .iter()
        .find(|r| {
            r.description
                .iter()
                .any(|d| d.contains("pct_employees_long_hours <"))
                && r.description
                    .iter()
                    .any(|d| d.contains("avg_annual_income_kusd >="))
        })
        .or_else(|| leaves.iter().max_by_key(|r| r.count))
        .map(|r| r.id)
        .expect("map has leaves");
    explorer.zoom(target)?;
    println!("{}", render_map(explorer.map()?));

    let countries = explorer.highlight("country")?;
    println!("Countries in the pleasant cluster:");
    for region in &countries.regions {
        println!(
            "  region #{} ({} rows): {}",
            region.region,
            region.count,
            region.examples.join(", ")
        );
    }
    println!();

    // Figure 1d: project onto the unemployment theme.
    let unemployment = explorer
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c.contains("unemployment")))
        .expect("unemployment theme detected");
    explorer.project_theme(unemployment)?;
    println!("{}", render_map(explorer.map()?));

    // Why is working in Canada a good idea? Count Canadian regions in the
    // zoomed (pleasant) selection vs the full table.
    let view = &explorer.current().view;
    let canada_in_selection = Predicate::is_in("country", ["Canada"])
        .select_view(view)?
        .len();
    println!(
        "Canadian regions in the pleasant selection: {} of {} selected rows",
        canada_in_selection,
        view.nrows()
    );

    println!();
    println!("{}", render_status(explorer.breadcrumbs(), &explorer.sql()));
    Ok(())
}
