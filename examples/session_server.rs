//! The asynchronous session tier (Figure 4): many users exploring
//! concurrently without blocking one another.
//!
//! The paper's NodeJS layer "manages the sessions and relays the maps to
//! the clients". This example runs an [`AsyncSessionServer`]: four
//! clients share one table (zero-copy — every session navigates views of
//! the same `Arc<Table>`), queue their commands, and receive typed
//! responses. Slow map builds overlap with fast highlights across
//! sessions, repeated analyses hit the shared cache, and each session's
//! commands still execute strictly in submission order.
//!
//! ```sh
//! cargo run --release --example session_server
//! ```
//!
//! With `--serve <addr>` it additionally binds the HTTP/NDJSON transport
//! on a real port and blocks, so you can drive the same engine with curl:
//!
//! With `--snapshot <path>` the demo table is served from the column
//! snapshot format: the first run generates it and writes the file, and
//! every later run decodes the snapshot instead of regenerating — the
//! fast path a long-lived server uses to restart without re-ingesting.
//!
//! With `--journal <dir>` every accepted command is journaled and the
//! server recovers past sessions on startup: the demo leaves one
//! journaled session open on exit, and the next run with the same
//! `--journal` replays it digest-checked and continues where it left
//! off — kill the process however you like in between.
//!
//! ```sh
//! cargo run --release --example session_server -- --serve 127.0.0.1:7878
//! # in another shell:
//! curl -s -X POST localhost:7878/sessions -d '{"table": "hollywood"}'
//! curl -s -X POST localhost:7878/sessions/1/commands -d '{"cmd": "themes"}'
//! curl -s -X POST localhost:7878/sessions/1/commands/batch --data-binary $'{"cmd": "select_theme", "theme": 0}\n{"cmd": "depth"}\n'
//! curl -s localhost:7878/stats
//! curl -s -X DELETE localhost:7878/sessions/1
//! ```

use std::sync::Arc;
use std::time::Instant;

use blaeu::core::render::state_to_json;
use blaeu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();

    // `--snapshot PATH`: decode the table from the column snapshot when
    // the file exists; otherwise generate it once and persist it so the
    // next start takes the fast path.
    let snapshot_path = args
        .iter()
        .position(|a| a == "--snapshot")
        .and_then(|at| args.get(at + 1).filter(|a| !a.starts_with("--")).cloned());
    let table = match &snapshot_path {
        Some(path) if std::path::Path::new(path).exists() => {
            let t0 = Instant::now();
            let table = Table::read_snapshot(path)?;
            println!(
                "loaded {} ({} x {}) from snapshot {path} in {:?}",
                table.name(),
                table.nrows(),
                table.ncols(),
                t0.elapsed()
            );
            table
        }
        _ => {
            let (table, _) = hollywood(&HollywoodConfig::default())?;
            if let Some(path) = &snapshot_path {
                table.write_snapshot(path)?;
                println!("wrote snapshot {path}; later runs skip generation");
            }
            table
        }
    };
    let table = Arc::new(table);

    // `--serve ADDR`: expose this engine over the wire instead of (only)
    // driving it in-process.
    let serve_addr = args.iter().position(|a| a == "--serve").map(|at| {
        args.get(at + 1)
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".into())
    });

    // `--journal DIR`: durable sessions — journal every command, recover
    // whatever a previous run (or crash) left behind.
    let journal_dir = args
        .iter()
        .position(|a| a == "--journal")
        .and_then(|at| args.get(at + 1).filter(|a| !a.starts_with("--")).cloned());
    let server = AsyncSessionServer::try_new(ServerConfig {
        journal_dir: journal_dir.clone().map(Into::into),
        ..ServerConfig::default()
    })?;
    if journal_dir.is_some() {
        let tables =
            std::collections::HashMap::from([("hollywood".to_owned(), Arc::clone(&table))]);
        let report = server.recover(&tables)?;
        if report.sessions.is_empty() && report.errors.is_empty() {
            println!("journal: nothing to recover (first run)");
        } else {
            println!(
                "journal: recovered sessions {:?} ({} commands replayed, digest-checked)",
                report.sessions, report.replayed
            );
            for error in &report.errors {
                println!("journal: contained recovery error: {error:?}");
            }
        }
    }

    // Four clients connect; each gets an isolated session over the SAME
    // shared table — no per-session copy (the create_shared path).
    let mut sessions = Vec::new();
    for _ in 0..4 {
        sessions.push(server.open_session(Arc::clone(&table), ExplorerConfig::default())?);
    }
    println!("{} sessions open: {:?}", server.len(), server.ids());

    // Each client maps a theme, then queues the rest of its explore
    // loop: zoom into the biggest region → highlight → rollback. Within
    // a session the pipeline runs in order; across sessions the theme
    // maps and the follow-up pipelines all overlap on the shared pool.
    let started = Instant::now();
    let maps: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(client, &id)| server.submit(id, Command::SelectTheme(client % 2)))
        .collect::<Result<_, _>>()?;
    let mut pipelines = Vec::new();
    for ((client, &id), map) in sessions.iter().enumerate().zip(maps) {
        let Response::Map(map) = map.join()? else {
            unreachable!("select_theme answers with a map");
        };
        let biggest = map.leaves().iter().max_by_key(|r| r.count).unwrap().id;
        let handles = vec![
            server.submit(id, Command::Zoom(biggest))?,
            server.submit(id, Command::Highlight("film".into()))?,
            server.submit(id, Command::Rollback)?,
        ];
        pipelines.push((client, id, handles));
    }

    for (client, id, handles) in pipelines {
        let mut regions = 0usize;
        let mut example = String::new();
        for handle in handles {
            match handle.join()? {
                Response::Highlight(hl) => {
                    regions = hl.regions.len();
                    example = hl
                        .regions
                        .first()
                        .map(|r| r.examples.join(", "))
                        .unwrap_or_default();
                }
                Response::Map(_) | Response::Depth(_) => {}
                other => println!("unexpected response: {other:?}"),
            }
        }
        println!("client {client} (session {id}): {regions} regions after zoom, e.g. {example}");
    }
    println!("all pipelines drained in {:?}", started.elapsed());

    // Clients 2 and 3 mapped the same themes as 0 and 1 on the same
    // table: their cluster analyses were cache hits, not recomputations.
    if let Some(stats) = server.cache_stats() {
        println!(
            "analysis cache: {} hits / {} misses (hit rate {:.0}%)",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
    }

    // The JSON a web client would render (first session, current state).
    let payload = server.manager().with(sessions[0], |ex| state_to_json(ex))?;
    let rendered = serde_json::to_string_pretty(&payload)?;
    println!(
        "\nsession {} payload preview (truncated):\n{}",
        sessions[0],
        &rendered[..rendered.len().min(800)]
    );

    for id in sessions {
        server.close(id)?;
    }
    println!("\nall sessions closed; server empty: {}", server.is_empty());

    // With a journal: leave one session open (mapped, zoomed) so the
    // NEXT run has something to recover — a restart demo in two runs.
    if let Some(dir) = &journal_dir {
        let id = server.open_named_session(
            "hollywood",
            Arc::clone(&table),
            ExplorerConfig::default(),
        )?;
        server.request(id, Command::SelectTheme(0))?;
        let digest = server.request(id, Command::Sql)?.digest();
        println!(
            "journal: session {id} left open in {dir} (sql digest {digest:016x}) — \
             run again with --journal {dir} to watch it recover"
        );
    }

    if let Some(addr) = serve_addr {
        let net = NetServer::bind(addr.as_str(), Arc::new(server), NetConfig::default())?;
        net.register_table("hollywood", Arc::clone(&table));
        println!("\nserving HTTP/NDJSON on http://{}", net.local_addr());
        println!("  POST /sessions               {{\"table\": \"hollywood\"}}");
        println!("  POST /sessions/:id/commands  {{\"cmd\": \"themes\"}} …");
        println!("  POST /sessions/:id/commands/batch   (NDJSON, streamed)");
        println!("  GET  /healthz | GET /stats | DELETE /sessions/:id");
        println!("press Ctrl-C to stop");
        net.join();
    }
    Ok(())
}
