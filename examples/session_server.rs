//! The session tier (Figure 4): many users exploring concurrently.
//!
//! The paper's NodeJS layer "manages the sessions and relays the maps to
//! the clients". This example runs four concurrent clients against one
//! [`SessionManager`], each performing an independent explore loop, and
//! prints the JSON payload a web client would receive.
//!
//! ```sh
//! cargo run --release --example session_server
//! ```

use blaeu::core::render::state_to_json;
use blaeu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (table, _) = hollywood(&HollywoodConfig::default())?;
    let manager = SessionManager::new();

    // Four clients connect; each gets an isolated session on the same data.
    let mut sessions = Vec::new();
    for _ in 0..4 {
        sessions.push(manager.create(table.clone(), ExplorerConfig::default())?);
    }
    println!("{} sessions open: {:?}", manager.len(), {
        let mut ids = manager.ids();
        ids.sort_unstable();
        ids
    });

    // Clients act concurrently on the shared executor: theme → map → zoom
    // → highlight → rollback. `par_with` fans out one worker per session
    // and keeps each session's own cluster analysis sequential.
    let outcomes = manager.par_with(&sessions, |id, ex| {
        let client = sessions.iter().position(|&s| s == id).unwrap();
        let theme = client % 2; // clients look at different themes
        ex.select_theme(theme).unwrap();
        let biggest = ex
            .map()
            .unwrap()
            .leaves()
            .iter()
            .max_by_key(|r| r.count)
            .unwrap()
            .id;
        ex.zoom(biggest).unwrap();
        let hl = ex.highlight("film").unwrap();
        println!(
            "client {client} (session {id}): {} regions after zoom, e.g. {}",
            hl.regions.len(),
            hl.regions
                .first()
                .map(|r| r.examples.join(", "))
                .unwrap_or_default()
        );
        ex.rollback().unwrap();
    });
    for outcome in outcomes {
        outcome.expect("clients run to completion");
    }

    // The JSON a web client would render (first session, current state).
    let payload = manager.with(sessions[0], |ex| state_to_json(ex))?;
    let rendered = serde_json::to_string_pretty(&payload)?;
    println!(
        "\nsession {} payload preview (truncated):\n{}",
        sessions[0],
        &rendered[..rendered.len().min(800)]
    );

    for id in sessions {
        manager.close(id)?;
    }
    println!(
        "\nall sessions closed; manager empty: {}",
        manager.is_empty()
    );
    Ok(())
}
