//! Demo scenario 1 — the Hollywood dataset (§4.2 of the paper).
//!
//! "The Hollywood dataset presents data about 900 Hollywood movies
//! released between 2007 and 2013. It contains 12 columns. Which films are
//! the most profitable? Which are those that fail? How do critics and
//! commercial success relate to each other?"
//!
//! ```sh
//! cargo run --release --example hollywood_explore
//! ```

use blaeu::core::render::{render_highlight, render_map, render_themes};
use blaeu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (table, _truth) = hollywood(&HollywoodConfig::default())?;
    println!(
        "Hollywood: {} movies x {} columns\n",
        table.nrows(),
        table.ncols()
    );

    let mut explorer = Explorer::open(table, ExplorerConfig::default())?;
    println!("{}", render_themes(explorer.theme_set(), 6));

    // Question 1: which films are the most profitable? Map the commercial
    // theme and look at the regions.
    let commercial = explorer
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c == "profitability"))
        .unwrap_or(0);
    let map = explorer.select_theme(commercial)?;
    println!("{}", render_map(map));

    // Find the region with the highest mean profitability via highlight.
    let profit = explorer.highlight("profitability")?;
    println!("{}", render_highlight(&profit));
    let best_region = profit
        .regions
        .iter()
        .max_by(|a, b| {
            let mean = |r: &blaeu::core::RegionHighlight| match &r.summary {
                blaeu::stats::ColumnSummary::Numeric(s) => s.mean,
                _ => f64::NEG_INFINITY,
            };
            mean(a).total_cmp(&mean(b))
        })
        .expect("has regions");
    println!(
        "most profitable region: #{} ({} films)\n",
        best_region.region, best_region.count
    );

    // Zoom into it: what kind of films are these?
    explorer.zoom(best_region.region)?;
    let films = explorer.highlight("film")?;
    for r in films.regions.iter().take(2) {
        println!(
            "sample titles in region #{}: {}",
            r.region,
            r.examples.join(", ")
        );
    }
    let genres = explorer.highlight("genre")?;
    println!("\n{}", render_highlight(&genres));

    // Question 2: how do critics and commercial success relate? Project
    // the same films onto the reception theme.
    let reception = explorer
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c == "critics_score"))
        .unwrap_or(0);
    explorer.project_theme(reception)?;
    println!("{}", render_map(explorer.map()?));
    let critics = explorer.highlight("critics_score")?;
    println!("{}", render_highlight(&critics));

    println!("final query: {}", explorer.sql());
    Ok(())
}
