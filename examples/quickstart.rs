//! Quickstart: open a table, browse themes, build a map, navigate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use blaeu::core::render::{render_map, render_status, render_themes};
use blaeu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load data. Any CSV works; here we use the built-in generator that
    //    mimics the paper's OECD "Countries & Work" demo dataset.
    let (table, _truth) = oecd(&OecdConfig {
        nrows: 1500,
        ncols: 40,
        ..OecdConfig::default()
    })?;
    println!(
        "Loaded \"{}\": {} rows x {} columns\n",
        table.name(),
        table.nrows(),
        table.ncols()
    );

    // 2. Open the explorer. Theme detection runs immediately: columns are
    //    grouped by mutual dependency (the paper's vertical clustering).
    let mut explorer = Explorer::open(table, ExplorerConfig::default())?;
    println!("{}", render_themes(explorer.theme_set(), 5));

    // 3. Select the theme that holds the labor indicators: Blaeu builds a
    //    data map — clusters of rows described by interpretable splits.
    let labor = explorer
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c == "pct_employees_long_hours"))
        .unwrap_or(0);
    let map = explorer.select_theme(labor)?;
    println!("{}", render_map(map));

    // 4. Zoom into the largest region and highlight the country column —
    //    which countries live in this cluster?
    let biggest = map.leaves().iter().max_by_key(|r| r.count).unwrap().id;
    explorer.zoom(biggest)?;
    println!("{}", render_map(explorer.map()?));

    let highlight = explorer.highlight("country")?;
    for region in highlight.regions.iter().take(3) {
        println!(
            "region #{}: {} rows, typical countries: {}",
            region.region,
            region.count,
            region.examples.join(", ")
        );
    }
    println!();

    // 5. Every exploration state is an implicit Select-Project query.
    println!("{}", render_status(explorer.breadcrumbs(), &explorer.sql()));

    // 6. Everything is reversible.
    explorer.rollback()?;
    println!(
        "after rollback: {} rows selected",
        explorer.current().view.nrows()
    );
    Ok(())
}
