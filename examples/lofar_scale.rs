//! Demo scenario 3 — the LOFAR catalogue at scale (§4.2).
//!
//! "Through this use case, our visitors will experience Blaeu with a
//! large, complex dataset" — 100,000s of tuples, dozens of variables.
//! This example measures the per-action latency that sampling + CLARA
//! buy: every action stays interactive although the table has 200k rows.
//!
//! ```sh
//! cargo run --release --example lofar_scale
//! ```

use std::time::Instant;

use blaeu::core::render::{render_map, render_themes};
use blaeu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let (table, _truth) = lofar(&LofarConfig {
        nrows: 200_000,
        ..LofarConfig::default()
    })?;
    println!(
        "LOFAR: {} sources x {} columns (generated in {:.1?})\n",
        table.nrows(),
        table.ncols(),
        t0.elapsed()
    );

    let t = Instant::now();
    let mut explorer = Explorer::open(table, ExplorerConfig::default())?;
    println!("theme detection: {:.1?}", t.elapsed());
    println!("{}", render_themes(explorer.theme_set(), 5));

    // Map the spectral theme.
    let spectral = explorer
        .themes()
        .iter()
        .position(|t| t.columns.iter().any(|c| c.starts_with("flux_")))
        .unwrap_or(0);
    let t = Instant::now();
    let map = explorer.select_theme(spectral)?;
    println!(
        "map construction over {} rows: {:.1?} (sampled {} rows)",
        map.view_rows,
        t.elapsed(),
        map.sample_size
    );
    println!("{}", render_map(map));

    // Zoom twice, timing each action.
    for step in 0..2 {
        let biggest = explorer
            .map()?
            .leaves()
            .iter()
            .max_by_key(|r| r.count)
            .unwrap()
            .id;
        let t = Instant::now();
        explorer.zoom(biggest)?;
        println!(
            "zoom {}: {:.1?} ({} rows remain)",
            step + 1,
            t.elapsed(),
            explorer.current().view.nrows()
        );
    }

    // Highlight a physical property inside the zoomed population.
    let t = Instant::now();
    let hl = explorer.highlight("spectral_index")?;
    println!("highlight: {:.1?}", t.elapsed());
    for r in hl.regions.iter().take(3) {
        println!(
            "  region #{}: {} rows, {}",
            r.region,
            r.count,
            r.examples.join(", ")
        );
    }

    let t = Instant::now();
    explorer.rollback()?;
    println!("rollback: {:.1?}", t.elapsed());
    println!("\nfinal query: {}", explorer.sql());
    Ok(())
}
