//! # blaeu — mapping and navigating large tables with cluster analysis
//!
//! A complete, pure-Rust reproduction of *Blaeu: Mapping and Navigating
//! Large Tables with Cluster Analysis* (Sellam, Cijvat, Koopmanschap,
//! Kersten — PVLDB 9(13), VLDB 2016), including every substrate the paper
//! builds on:
//!
//! * [`store`] — columnar in-memory storage, CSV ingestion, Select-Project
//!   queries, multi-scale sampling, synthetic dataset generators
//!   (the paper's MonetDB tier).
//! * [`stats`] — entropy, mutual information, correlation, summaries
//!   (the paper's R statistics).
//! * [`cluster`] — PAM, CLARA, k-means, silhouette (exact & Monte-Carlo),
//!   model selection, validation (the R `cluster` package).
//! * [`tree`] — CART decision trees and rule extraction (R `rpart`).
//! * [`core`] — themes, data maps, the zoom/highlight/project/rollback
//!   explorer, sessions and renderers (the Blaeu system itself).
//! * [`exec`] — the shared parallel-execution substrate every hot sweep
//!   routes through: one process-wide thread budget, deterministic
//!   ordering, and nesting-aware degradation.
//!
//! ## Quickstart
//!
//! ```
//! use blaeu::prelude::*;
//!
//! // A dataset shaped like the paper's OECD "Countries & Work" demo.
//! let (table, _truth) = oecd(&OecdConfig { nrows: 300, ncols: 24, ..OecdConfig::default() }).unwrap();
//!
//! // Open an explorer: themes are detected immediately.
//! let mut explorer = Explorer::open(table, ExplorerConfig::default()).unwrap();
//! assert!(!explorer.themes().is_empty());
//!
//! // Select a theme to get a data map, then navigate.
//! let map = explorer.select_theme(0).unwrap();
//! let region = map.leaves()[0].id;
//! explorer.zoom(region).unwrap();
//! let _countries = explorer.highlight("country").unwrap();
//! explorer.rollback().unwrap();
//! ```

#![warn(missing_docs)]

pub mod repl;

pub use blaeu_cluster as cluster;
pub use blaeu_core as core;
pub use blaeu_exec as exec;
pub use blaeu_net as net;
pub use blaeu_server as server;
pub use blaeu_stats as stats;
pub use blaeu_store as store;
pub use blaeu_tree as tree;

/// One-stop imports for typical use.
pub mod prelude {
    pub use blaeu_cluster::{
        adjusted_rand_index, agglomerative, clara, kmeans, label_nmi, pam, select_k,
        silhouette_score, ClaraConfig, DistanceMatrix, KMeansConfig, KSelectConfig, Linkage,
        Metric, PamConfig, Points,
    };
    pub use blaeu_core::{
        build_map, detect_themes, render, BlaeuError, Command, DataMap, DependencyGraph, Explorer,
        ExplorerConfig, Highlight, KChoice, MapperConfig, Region, Response, SessionManager,
        SketchOp, SketchPartial, SketchPlan, SketchResult, Theme, ThemeConfig, ThemeSet,
    };
    pub use blaeu_exec::{JobHandle, JobPool, JobStatus};
    pub use blaeu_net::{NetConfig, NetServer};
    pub use blaeu_server::{
        split_ranges, AnalysisCache, AsyncSessionServer, CacheStats, CoordStats, FsyncPolicy,
        RecoveryReport, ServerConfig, SessionJournal, ShardCoordinator, WorkerClient,
    };
    pub use blaeu_stats::{
        chi2_test, dependency_matrix, describe, histogram, DependencyMeasure, DependencyOptions,
        ScatterGrid,
    };
    pub use blaeu_store::generate::{
        hollywood, lofar, oecd, planted, HollywoodConfig, LofarConfig, OecdConfig, PlantedConfig,
    };
    pub use blaeu_store::{
        read_csv_str, Column, ColumnRead, CsvOptions, Predicate, SelectProject, Table,
        TableBuilder, TableView,
    };
    pub use blaeu_tree::{alpha_path, leaf_rules, prune, CartConfig, DecisionTree};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let t = TableBuilder::new("t")
            .column("x", Column::dense_f64(vec![1.0, 2.0]))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(t.nrows(), 2);
    }
}
