//! Interactive terminal explorer — the stand-in for the paper's web UI.
//!
//! ```sh
//! cargo run --release --bin blaeu-repl -- path/to/table.csv
//! cargo run --release --bin blaeu-repl -- --demo oecd|hollywood|lofar
//! ```
//!
//! Type `help` at the prompt for the command language.

use std::io::{BufRead, Write};

use blaeu::core::{Explorer, ExplorerConfig};
use blaeu::repl::{execute, parse, Outcome, HELP};
use blaeu::store::generate::{hollywood, lofar, oecd, HollywoodConfig, LofarConfig, OecdConfig};
use blaeu::store::{read_csv_file, CsvOptions, Table};

fn load(args: &[String]) -> Result<Table, String> {
    match args {
        [flag, which] if flag == "--demo" => match which.as_str() {
            "oecd" => Ok(oecd(&OecdConfig::default()).map_err(|e| e.to_string())?.0),
            "hollywood" => Ok(hollywood(&HollywoodConfig::default())
                .map_err(|e| e.to_string())?
                .0),
            "lofar" => Ok(lofar(&LofarConfig {
                nrows: 100_000,
                ..LofarConfig::default()
            })
            .map_err(|e| e.to_string())?
            .0),
            other => Err(format!(
                "unknown demo {other:?}; pick oecd, hollywood or lofar"
            )),
        },
        [path] => read_csv_file(std::path::Path::new(path), &CsvOptions::default())
            .map_err(|e| e.to_string()),
        _ => Err("usage: blaeu-repl <table.csv> | --demo oecd|hollywood|lofar".to_owned()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let table = match load(&args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    println!(
        "loaded \"{}\": {} rows x {} columns; detecting themes…",
        table.name(),
        table.nrows(),
        table.ncols()
    );
    let mut explorer = match Explorer::open(table, ExplorerConfig::default()) {
        Ok(ex) => ex,
        Err(e) => {
            eprintln!("cannot open explorer: {e}");
            std::process::exit(2);
        }
    };
    println!("{} themes detected. {HELP}", explorer.themes().len());

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("blaeu> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse(line) {
            Ok(cmd) => match execute(&mut explorer, cmd) {
                Outcome::Continue(text) => print!("{text}"),
                Outcome::Stop(text) => {
                    print!("{text}");
                    break;
                }
            },
            Err(msg) => println!("{msg}"),
        }
    }
}
