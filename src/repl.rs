//! Command interpreter for the interactive explorer binary.
//!
//! The paper demonstrates Blaeu as an interactive tool: visitors click
//! through themes and maps. This module is the terminal equivalent — a
//! small command language over [`Explorer`] — factored out of the binary
//! so parsing and dispatch are unit-testable.

use blaeu_core::render::{render_highlight, render_map, render_status, render_themes, write_svg};
use blaeu_core::{BlaeuError, Explorer};

/// A parsed REPL command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Show the theme list.
    Themes,
    /// Select a theme by index and build its map.
    Theme(usize),
    /// Show the current map.
    Map,
    /// Zoom into a region id.
    Zoom(usize),
    /// Highlight a column.
    Highlight(String),
    /// Bivariate scatter of two numeric columns, per region.
    Scatter(String, String),
    /// Project onto a theme index.
    Project(usize),
    /// Show details of one region.
    Region(usize),
    /// Roll back one step.
    Back,
    /// Show the action trail and SQL.
    Status,
    /// Export the current map as SVG to a path.
    Svg(String),
    /// Export the current selection as CSV to a path.
    Export(String),
    /// Show help.
    Help,
    /// Quit the session.
    Quit,
}

/// Parses one input line into a [`Command`].
///
/// # Errors
/// Returns a human-readable message for unknown or malformed input.
pub fn parse(line: &str) -> Result<Command, String> {
    let mut parts = line.split_whitespace();
    let head = parts.next().unwrap_or("").to_ascii_lowercase();
    let arg = parts.next();
    let arg2 = parts.next();
    if parts.next().is_some() {
        return Err("too many arguments".to_owned());
    }
    if arg2.is_some() && head != "scatter" {
        return Err("too many arguments (only 'scatter' takes two)".to_owned());
    }
    let need_index = |arg: Option<&str>, what: &str| -> Result<usize, String> {
        arg.ok_or_else(|| format!("usage: {what} <number>"))?
            .parse::<usize>()
            .map_err(|_| format!("{what} expects a number"))
    };
    match head.as_str() {
        "themes" | "t" => Ok(Command::Themes),
        "theme" => Ok(Command::Theme(need_index(arg, "theme")?)),
        "map" | "m" => Ok(Command::Map),
        "zoom" | "z" => Ok(Command::Zoom(need_index(arg, "zoom")?)),
        "highlight" | "h" => arg
            .map(|c| Command::Highlight(c.to_owned()))
            .ok_or_else(|| "usage: highlight <column>".to_owned()),
        "scatter" => match (arg, arg2) {
            (Some(x), Some(y)) => Ok(Command::Scatter(x.to_owned(), y.to_owned())),
            _ => Err("usage: scatter <xcolumn> <ycolumn>".to_owned()),
        },
        "project" | "p" => Ok(Command::Project(need_index(arg, "project")?)),
        "region" | "r" => Ok(Command::Region(need_index(arg, "region")?)),
        "back" | "b" | "rollback" => Ok(Command::Back),
        "status" | "s" | "sql" => Ok(Command::Status),
        "svg" => arg
            .map(|p| Command::Svg(p.to_owned()))
            .ok_or_else(|| "usage: svg <path>".to_owned()),
        "export" => arg
            .map(|p| Command::Export(p.to_owned()))
            .ok_or_else(|| "usage: export <path.csv>".to_owned()),
        "help" | "?" => Ok(Command::Help),
        "quit" | "q" | "exit" => Ok(Command::Quit),
        "" => Err("empty command (try 'help')".to_owned()),
        other => Err(format!("unknown command {other:?} (try 'help')")),
    }
}

/// Help text for the command language.
pub const HELP: &str = "\
commands:
  themes               list detected themes
  theme <i>            select theme i and build its data map
  map                  show the current map
  zoom <region>        drill into a region (rebuilds the map)
  highlight <column>   per-region distribution of a column
  scatter <x> <y>      per-region density plot of two numeric columns
  project <i>          re-map the same rows under theme i's columns
  region <id>          details of one region (rule, counts, examples)
  back                 roll back one action
  status               action trail + the implicit SQL query
  svg <path>           write the current map as an SVG treemap
  export <path.csv>    write the current selection as CSV
  help                 this text
  quit                 leave
";

/// Outcome of executing a command.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Text to print; the session continues.
    Continue(String),
    /// Text to print; the session ends.
    Stop(String),
}

/// Executes one command against the explorer, rendering the result.
pub fn execute(explorer: &mut Explorer, command: Command) -> Outcome {
    let text = match command {
        Command::Themes => render_themes(explorer.theme_set(), 6),
        Command::Theme(i) => match explorer.select_theme(i) {
            Ok(map) => render_map(map),
            Err(e) => format!("error: {e}\n"),
        },
        Command::Map => match explorer.map() {
            Ok(map) => render_map(map),
            Err(e) => format!("error: {e}\n"),
        },
        Command::Zoom(region) => match explorer.zoom(region) {
            Ok(map) => render_map(map),
            Err(e) => format!("error: {e}\n"),
        },
        Command::Highlight(column) => match explorer.highlight(&column) {
            Ok(hl) => render_highlight(&hl),
            Err(e) => format!("error: {e}\n"),
        },
        Command::Scatter(x, y) => match explorer.scatter(&x, &y, 24) {
            Ok(grids) => {
                let mut out = String::new();
                for (region, grid) in grids {
                    out.push_str(&format!("region #{region}:\n"));
                    out.push_str(&grid.render(&x, &y));
                }
                out
            }
            Err(e) => format!("error: {e}\n"),
        },
        Command::Project(i) => match explorer.project_theme(i) {
            Ok(map) => render_map(map),
            Err(e) => format!("error: {e}\n"),
        },
        Command::Region(id) => match explorer.region_detail(id, 5) {
            Ok(detail) => {
                let mut out = format!(
                    "region #{}: {} rows ({:.1}%), cluster {}\n",
                    detail.region.id,
                    detail.region.count,
                    detail.region.fraction * 100.0,
                    detail.region.cluster
                );
                if !detail.region.description.is_empty() {
                    out.push_str(&format!(
                        "  where {}\n",
                        detail.region.description.join(" and ")
                    ));
                }
                out.push_str(&format!("  SQL: {}\n", detail.region.predicate));
                out.push_str(&format!(
                    "  {} example row(s) shown of {}\n",
                    detail.examples.nrows(),
                    detail.region.count
                ));
                for row in 0..detail.examples.nrows() {
                    let vals = detail
                        .examples
                        .row(row)
                        .unwrap_or_default()
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.push_str(&format!("    [{vals}]\n"));
                }
                out
            }
            Err(e) => format!("error: {e}\n"),
        },
        Command::Back => match explorer.rollback() {
            Ok(()) => format!(
                "rolled back; {} rows selected\n",
                explorer.current().view.nrows()
            ),
            Err(BlaeuError::HistoryEmpty) => "already at the initial state\n".to_owned(),
            Err(e) => format!("error: {e}\n"),
        },
        Command::Status => render_status(explorer.breadcrumbs(), &explorer.sql()),
        Command::Svg(path) => match explorer.map() {
            Ok(map) => match write_svg(map, std::path::Path::new(&path), 900, 540) {
                Ok(()) => format!("wrote {path}\n"),
                Err(e) => format!("error: {e}\n"),
            },
            Err(e) => format!("error: {e}\n"),
        },
        Command::Export(path) => {
            match std::fs::File::create(&path)
                .map_err(BlaeuError::from_io)
                .and_then(|f| explorer.export_view_csv(std::io::BufWriter::new(f)))
            {
                Ok(()) => format!("wrote {} rows to {path}\n", explorer.current().view.nrows()),
                Err(e) => format!("error: {e}\n"),
            }
        }
        Command::Help => HELP.to_owned(),
        Command::Quit => return Outcome::Stop("bye\n".to_owned()),
    };
    Outcome::Continue(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaeu_core::ExplorerConfig;
    use blaeu_store::generate::{oecd, OecdConfig};

    fn explorer() -> Explorer {
        let (table, _) = oecd(&OecdConfig {
            nrows: 300,
            ncols: 24,
            missing_rate: 0.0,
            ..OecdConfig::default()
        })
        .unwrap();
        Explorer::open(table, ExplorerConfig::default()).unwrap()
    }

    #[test]
    fn parse_commands() {
        assert_eq!(parse("themes"), Ok(Command::Themes));
        assert_eq!(parse("t"), Ok(Command::Themes));
        assert_eq!(parse("theme 2"), Ok(Command::Theme(2)));
        assert_eq!(parse("zoom 5"), Ok(Command::Zoom(5)));
        assert_eq!(parse("z 5"), Ok(Command::Zoom(5)));
        assert_eq!(
            parse("highlight country"),
            Ok(Command::Highlight("country".into()))
        );
        assert_eq!(parse("project 1"), Ok(Command::Project(1)));
        assert_eq!(parse("region 3"), Ok(Command::Region(3)));
        assert_eq!(parse("back"), Ok(Command::Back));
        assert_eq!(parse("sql"), Ok(Command::Status));
        assert_eq!(
            parse("svg /tmp/map.svg"),
            Ok(Command::Svg("/tmp/map.svg".into()))
        );
        assert_eq!(
            parse("export /tmp/v.csv"),
            Ok(Command::Export("/tmp/v.csv".into()))
        );
        assert_eq!(parse("help"), Ok(Command::Help));
        assert_eq!(parse("q"), Ok(Command::Quit));
    }

    #[test]
    fn parse_scatter() {
        assert_eq!(
            parse("scatter income hours"),
            Ok(Command::Scatter("income".into(), "hours".into()))
        );
        assert!(parse("scatter income").is_err());
        assert!(parse("scatter a b c").is_err());
    }

    #[test]
    fn execute_scatter() {
        let mut ex = explorer();
        execute(&mut ex, Command::Theme(0));
        let cols = ex.current().columns.clone();
        let Outcome::Continue(out) =
            execute(&mut ex, Command::Scatter(cols[0].clone(), cols[1].clone()))
        else {
            panic!("scatter should continue");
        };
        assert!(out.contains("region #"), "{out}");
        let Outcome::Continue(out) =
            execute(&mut ex, Command::Scatter("country".into(), cols[0].clone()))
        else {
            panic!("bad scatter should continue");
        };
        assert!(out.contains("error:"));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("frobnicate").is_err());
        assert!(parse("theme").is_err());
        assert!(parse("theme x").is_err());
        assert!(parse("zoom 1 2").is_err());
        assert!(parse("highlight").is_err());
    }

    #[test]
    fn execute_theme_map_zoom_back() {
        let mut ex = explorer();
        let Outcome::Continue(out) = execute(&mut ex, Command::Themes) else {
            panic!("themes should continue");
        };
        assert!(out.contains("Themes ("));

        let Outcome::Continue(out) = execute(&mut ex, Command::Theme(0)) else {
            panic!("theme should continue");
        };
        assert!(out.contains("Data map over ["));

        // Zoom into the first leaf region (find it from the map).
        let leaf = ex.map().unwrap().leaves()[0].id;
        let Outcome::Continue(out) = execute(&mut ex, Command::Zoom(leaf)) else {
            panic!("zoom should continue");
        };
        assert!(out.contains("Data map over ["));

        let Outcome::Continue(out) = execute(&mut ex, Command::Back) else {
            panic!("back should continue");
        };
        assert!(out.contains("rolled back"));
    }

    #[test]
    fn execute_errors_render_not_panic() {
        let mut ex = explorer();
        let Outcome::Continue(out) = execute(&mut ex, Command::Zoom(0)) else {
            panic!("zoom error should continue");
        };
        assert!(out.contains("error:"));
        let Outcome::Continue(out) = execute(&mut ex, Command::Theme(999)) else {
            panic!("bad theme should continue");
        };
        assert!(out.contains("error:"));
        let Outcome::Continue(out) = execute(&mut ex, Command::Highlight("ghost".into())) else {
            panic!("bad column should continue");
        };
        assert!(out.contains("error:"));
    }

    #[test]
    fn execute_region_detail_and_status() {
        let mut ex = explorer();
        execute(&mut ex, Command::Theme(0));
        let leaf = ex.map().unwrap().leaves()[0].id;
        let Outcome::Continue(out) = execute(&mut ex, Command::Region(leaf)) else {
            panic!("region should continue");
        };
        assert!(out.contains("example row"));
        let Outcome::Continue(out) = execute(&mut ex, Command::Status) else {
            panic!("status should continue");
        };
        assert!(out.contains("Query: SELECT"));
    }

    #[test]
    fn execute_quit_stops() {
        let mut ex = explorer();
        assert_eq!(
            execute(&mut ex, Command::Quit),
            Outcome::Stop("bye\n".to_owned())
        );
    }

    #[test]
    fn execute_exports() {
        let mut ex = explorer();
        execute(&mut ex, Command::Theme(0));
        let dir = std::env::temp_dir().join("blaeu_repl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let svg = dir.join("m.svg");
        let csv = dir.join("v.csv");
        let Outcome::Continue(out) =
            execute(&mut ex, Command::Svg(svg.to_string_lossy().into_owned()))
        else {
            panic!("svg should continue");
        };
        assert!(out.contains("wrote"), "{out}");
        let Outcome::Continue(out) =
            execute(&mut ex, Command::Export(csv.to_string_lossy().into_owned()))
        else {
            panic!("export should continue");
        };
        assert!(out.contains("wrote"), "{out}");
        assert!(svg.exists());
        assert!(csv.exists());
        std::fs::remove_file(svg).ok();
        std::fs::remove_file(csv).ok();
    }
}
