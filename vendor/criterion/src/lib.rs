//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the criterion API surface blaeu's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`] and
//! [`black_box`] — over a simple wall-clock measurement loop. It reports
//! median / mean per-iteration time to stdout; there is no statistical
//! analysis or HTML report.
//!
//! ## Baseline save/compare (regression gate)
//!
//! Unlike upstream criterion's `--save-baseline` flags, the shim drives
//! baselines with environment variables so `cargo bench` invocations in
//! CI need no argument plumbing:
//!
//! - `CRITERION_SAVE_BASELINE=<path>` — after all groups run, write every
//!   benchmark's median (nanoseconds) to `<path>` as a flat JSON object.
//! - `CRITERION_BASELINE=<path>` — load a previously saved baseline and
//!   compare medians; [`finalize`] reports `false` (and
//!   `criterion_main!` exits non-zero) if any shared benchmark regressed
//!   by more than the allowed percentage.
//! - `CRITERION_REGRESSION_PCT=<pct>` — allowed median regression
//!   (default 20).
//! - `CRITERION_REGRESSION_PCT_OVERRIDES=<name=pct,...>` — per-benchmark
//!   thresholds overriding the global one; a `name` ending in `*` matches
//!   every benchmark with that prefix (exact entries win over prefixes,
//!   longer prefixes over shorter). Example:
//!   `view_zoom/deep6/materialize=40,exec_skew/*=35`.
//! - `CRITERION_REQUIRE_ALL=1` — also fail when a baseline benchmark did
//!   not run (otherwise only a warning), so renames/deletions cannot
//!   silently drop a benchmark out of the gate. Only baseline entries
//!   whose group (the text before the first `/`) ran in this process are
//!   required, so several bench binaries can gate against one shared
//!   baseline file without flagging each other's benchmarks.
//! - `CRITERION_REQUIRE_GROUPS=<group,...>` — groups that must produce at
//!   least one benchmark in this run, failing the gate otherwise. This
//!   closes the hole the group scoping above opens: renaming a whole
//!   group would otherwise drop it out of the "ran" set and skip its
//!   checks silently. CI pins each bench step's expected groups.
//!
//! Saving **merges across group boundaries**: when the
//! `CRITERION_SAVE_BASELINE` file already exists, entries from groups
//! this process did not run are kept (the other bench binaries'
//! benchmarks), while groups that did run are replaced wholesale — so
//! consecutive bench binaries accumulate one combined medians file and a
//! refresh never leaves stale entries for renamed/deleted benchmarks of
//! a refreshed group.
//!
//! Comparisons are **calibration-normalized**: alongside every
//! benchmark's median the shim records a `<name>@cal` entry — the
//! minimum wall time of a fixed spin kernel measured immediately before
//! that benchmark's samples — and scales the baseline median by the
//! ratio of the two `@cal` values before comparing. Interleaving the
//! calibration with the measurement absorbs *scalar* speed differences:
//! a committed baseline from a slower box, and mid-run CPU throttling on
//! shared runners. The kernel is single-threaded, so core-count
//! differences are NOT absorbed — record the baseline with the same
//! thread budget (`BLAEU_THREADS`) and a comparable core count to the
//! gating runner. When a per-bench `@cal` pair is missing, the ratio of
//! the [`CALIBRATION_BENCH`] benchmark medians is used instead (and
//! failing that, raw nanoseconds are compared).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Name of the machine-speed calibration benchmark. When present in both
/// the baseline and the current run, regression comparison is performed
/// on calibration-normalized medians.
pub const CALIBRATION_BENCH: &str = "calibrate/spin";

/// Suffix of the per-benchmark interleaved-calibration entries.
const CAL_SUFFIX: &str = "@cal";

/// Fixed spin kernel used for interleaved calibration. The xorshift
/// steps form a serial dependency chain, so the loop cannot be
/// closed-formed or vectorized away.
fn calibration_spin() -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..2_000_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// Minimum wall time of three calibration spins, in nanoseconds — the
/// minimum is robust to interference, and measuring right before each
/// benchmark captures the CPU speed *in that benchmark's regime*.
fn local_calibration_ns() -> u128 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            black_box(calibration_spin());
            start.elapsed().as_nanos()
        })
        .min()
        .expect("three samples")
}

/// Default allowed median regression, percent.
const DEFAULT_REGRESSION_PCT: f64 = 20.0;

/// Medians (name, nanoseconds) recorded by every benchmark this process
/// ran, in execution order.
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// How batched inputs are sized (accepted for compatibility; the shim
/// times one routine invocation per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            timings: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up invocation outside the measurement.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let calibration = local_calibration_ns();
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    let mut timings = bencher.timings;
    if timings.is_empty() {
        println!("{name:<50} (no measurement)");
        return;
    }
    timings.sort_unstable();
    let median = timings[timings.len() / 2];
    let mean = timings.iter().sum::<Duration>() / timings.len() as u32;
    println!(
        "{name:<50} median {:>10}   mean {:>10}   ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        timings.len()
    );
    let mut results = RESULTS.lock().expect("results lock poisoned");
    results.push((name.to_owned(), median.as_nanos()));
    results.push((format!("{name}{CAL_SUFFIX}"), calibration));
}

/// Serializes medians as a flat JSON object (sorted by name, ns values).
fn baseline_to_json(results: &[(String, u128)]) -> String {
    let mut sorted: Vec<&(String, u128)> = results.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (k, (name, ns)) in sorted.iter().enumerate() {
        let comma = if k + 1 < sorted.len() { "," } else { "" };
        out.push_str(&format!("  \"{name}\": {ns}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

/// Parses the flat JSON baseline format written by [`baseline_to_json`].
/// Benchmark names never contain quotes or escapes, so a quote/digit
/// scanner is sufficient — the vendored serde_json has no parser.
fn baseline_from_json(text: &str) -> Vec<(String, u128)> {
    let mut results = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('"') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        let name = rest[..close].to_owned();
        rest = &rest[close + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = rest[colon + 1..].trim_start();
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        rest = &rest[digits.len()..];
        if let Ok(ns) = digits.parse::<u128>() {
            results.push((name, ns));
        }
    }
    results
}

fn median_of(results: &[(String, u128)], name: &str) -> Option<u128> {
    results.iter().find(|(n, _)| n == name).map(|&(_, ns)| ns)
}

/// Per-benchmark allowed-regression overrides parsed from
/// `CRITERION_REGRESSION_PCT_OVERRIDES` (`name=pct` entries, comma or
/// semicolon separated; a name ending in `*` is a prefix pattern).
#[derive(Debug, Default)]
struct PctOverrides {
    exact: Vec<(String, f64)>,
    prefixes: Vec<(String, f64)>,
}

impl PctOverrides {
    fn from_env() -> Self {
        Self::parse(&std::env::var("CRITERION_REGRESSION_PCT_OVERRIDES").unwrap_or_default())
    }

    fn parse(spec: &str) -> Self {
        let mut out = PctOverrides::default();
        for entry in spec.split([',', ';']) {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, pct)) = entry.rsplit_once('=') else {
                println!("warning: malformed CRITERION_REGRESSION_PCT_OVERRIDES entry {entry:?}");
                continue;
            };
            let Ok(pct) = pct.trim().parse::<f64>() else {
                println!("warning: malformed CRITERION_REGRESSION_PCT_OVERRIDES entry {entry:?}");
                continue;
            };
            match name.trim().strip_suffix('*') {
                Some(prefix) => out.prefixes.push((prefix.to_owned(), pct)),
                None => out.exact.push((name.trim().to_owned(), pct)),
            }
        }
        // Longest prefix wins when several match.
        out.prefixes
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Allowed regression for `name`: exact entry, else longest matching
    /// prefix, else the global default.
    fn allowed_pct(&self, name: &str, default_pct: f64) -> f64 {
        if let Some((_, pct)) = self.exact.iter().find(|(n, _)| n == name) {
            return *pct;
        }
        self.prefixes
            .iter()
            .find(|(prefix, _)| name.starts_with(prefix.as_str()))
            .map_or(default_pct, |&(_, pct)| pct)
    }
}

/// Group of a benchmark name: the text before the first `/`.
fn group_of(name: &str) -> &str {
    name.split('/').next().unwrap_or(name)
}

/// True for bookkeeping entries that are never gated themselves.
fn is_bookkeeping(name: &str) -> bool {
    name == CALIBRATION_BENCH || name.ends_with(CAL_SUFFIX)
}

/// Compares current medians against a baseline; returns the regressions
/// as `(name, baseline_ns_scaled, current_ns)`.
fn find_regressions(
    baseline: &[(String, u128)],
    current: &[(String, u128)],
    allowed_pct: f64,
    overrides: &PctOverrides,
) -> Vec<(String, f64, u128)> {
    // Global fallback scale: the ratio of the calibration-benchmark
    // medians, when both runs carry it.
    let global_scale = match (
        median_of(baseline, CALIBRATION_BENCH),
        median_of(current, CALIBRATION_BENCH),
    ) {
        (Some(base_cal), Some(cur_cal)) if base_cal > 0 => cur_cal as f64 / base_cal as f64,
        _ => 1.0,
    };
    let mut regressions = Vec::new();
    for (name, current_ns) in current {
        if is_bookkeeping(name) {
            continue;
        }
        let Some(baseline_ns) = median_of(baseline, name) else {
            continue; // new benchmark: nothing to compare against
        };
        // Prefer the benchmark's own interleaved calibration pair: it
        // reflects the CPU speed at the moment each side was measured.
        let cal_name = format!("{name}{CAL_SUFFIX}");
        let scale = match (
            median_of(baseline, &cal_name),
            median_of(current, &cal_name),
        ) {
            (Some(base_cal), Some(cur_cal)) if base_cal > 0 => cur_cal as f64 / base_cal as f64,
            _ => global_scale,
        };
        let expected = baseline_ns as f64 * scale;
        let pct = overrides.allowed_pct(name, allowed_pct);
        if (*current_ns as f64) > expected * (1.0 + pct / 100.0) {
            regressions.push((name.clone(), expected, *current_ns));
        }
    }
    regressions
}

/// Baseline benchmarks with no matching result in the current run —
/// renamed or deleted benchmarks would otherwise drop out of the gate
/// silently. Scoped to the groups this process ran, so one shared
/// baseline can gate several bench binaries; pair the scoping with
/// `CRITERION_REQUIRE_GROUPS` so a whole-group rename cannot slip
/// through the scope.
fn missing_from_current(baseline: &[(String, u128)], current: &[(String, u128)]) -> Vec<String> {
    let ran_groups: std::collections::HashSet<&str> =
        current.iter().map(|(name, _)| group_of(name)).collect();
    baseline
        .iter()
        .map(|(name, _)| name)
        .filter(|name| {
            !is_bookkeeping(name)
                && ran_groups.contains(group_of(name))
                && median_of(current, name).is_none()
        })
        .cloned()
        .collect()
}

/// Groups from `CRITERION_REQUIRE_GROUPS` (comma/semicolon separated)
/// that produced no benchmark in the current run. Group-scoped
/// `CRITERION_REQUIRE_ALL` alone cannot catch a *whole-group* rename —
/// the renamed group simply stops being "ran" — so CI pins each bench
/// step's expected groups explicitly.
fn missing_groups(current: &[(String, u128)]) -> Vec<String> {
    let Ok(spec) = std::env::var("CRITERION_REQUIRE_GROUPS") else {
        return Vec::new();
    };
    let ran_groups: std::collections::HashSet<&str> =
        current.iter().map(|(name, _)| group_of(name)).collect();
    spec.split([',', ';'])
        .map(str::trim)
        .filter(|g| !g.is_empty() && !ran_groups.contains(g))
        .map(str::to_owned)
        .collect()
}

/// Finishes a bench run: saves/compares baselines per the `CRITERION_*`
/// environment variables (see the crate docs) and clears the recorded
/// results. Returns `false` when a regression gate failed —
/// `criterion_main!` turns that into a non-zero exit code.
///
/// Baseline benchmarks missing from the current run are reported; with
/// `CRITERION_REQUIRE_ALL=1` (what CI sets) they fail the gate, so a
/// renamed or deleted benchmark cannot silently disable its own check —
/// refresh the committed baseline alongside the rename.
pub fn finalize() -> bool {
    let results = std::mem::take(&mut *RESULTS.lock().expect("results lock poisoned"));
    let gated = results
        .iter()
        .filter(|(name, _)| !is_bookkeeping(name))
        .count();
    if let Ok(path) = std::env::var("CRITERION_SAVE_BASELINE") {
        // Merge with an existing file, but only across group boundaries:
        // entries from groups this process did not run survive (the other
        // bench binaries' benchmarks), while groups that DID run are
        // replaced wholesale — so a renamed or deleted benchmark cannot
        // leave a stale entry behind when its group's baseline is
        // refreshed.
        let ran_groups: std::collections::HashSet<String> = results
            .iter()
            .map(|(name, _)| group_of(name).to_owned())
            .collect();
        let mut merged: Vec<(String, u128)> = std::fs::read_to_string(&path)
            .map(|text| baseline_from_json(&text))
            .unwrap_or_default()
            .into_iter()
            .filter(|(name, _)| !ran_groups.contains(group_of(name)))
            .collect();
        merged.extend(results.iter().cloned());
        std::fs::write(&path, baseline_to_json(&merged))
            .unwrap_or_else(|e| panic!("cannot write baseline {path}: {e}"));
        println!("saved baseline ({gated} benchmarks) to {path}");
    }
    let Ok(path) = std::env::var("CRITERION_BASELINE") else {
        return true;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let baseline = baseline_from_json(&text);
    let allowed_pct = std::env::var("CRITERION_REGRESSION_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_REGRESSION_PCT);
    let missing = missing_from_current(&baseline, &results);
    let missing_fails = std::env::var("CRITERION_REQUIRE_ALL").is_ok_and(|v| v == "1");
    for name in &missing {
        println!(
            "{}: baseline benchmark {name} did not run (renamed/deleted? refresh the baseline)",
            if missing_fails { "error" } else { "warning" }
        );
    }
    let absent_groups = missing_groups(&results);
    for group in &absent_groups {
        println!("error: required benchmark group {group} did not run (renamed? update CRITERION_REQUIRE_GROUPS and the baseline)");
    }
    let overrides = PctOverrides::from_env();
    let regressions = find_regressions(&baseline, &results, allowed_pct, &overrides);
    if regressions.is_empty() && (missing.is_empty() || !missing_fails) && absent_groups.is_empty()
    {
        println!("regression gate: OK ({gated} benchmarks within {allowed_pct}% of {path})");
        return true;
    }
    println!("regression gate: FAILED (allowed {allowed_pct}% over {path})");
    for (name, expected, current) in &regressions {
        println!(
            "  {name}: median {} vs baseline {} ({:+.1}%)",
            fmt_duration(Duration::from_nanos(*current as u64)),
            fmt_duration(Duration::from_nanos(*expected as u64)),
            (*current as f64 / expected - 1.0) * 100.0
        );
    }
    false
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<N, F>(&mut self, id: N, f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        F: FnOnce(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.samples, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        I: ?Sized,
        F: FnOnce(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.samples, |b| f(b, input));
        self
    }

    /// Finishes the group (flush point; kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, self.samples, f);
        self
    }
}

/// Declares a group of benchmark functions (shim for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups (shim for
/// `criterion_main!`). After the groups run, [`finalize`] applies the
/// baseline save/compare protocol; a failed regression gate exits
/// non-zero.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            if !$crate::finalize() {
                std::process::exit(1);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 1, "routine should run warm-up + samples");
    }

    #[test]
    fn baseline_json_round_trips() {
        let results = vec![
            ("exec_skew/par_map/adaptive".to_owned(), 1_234_567u128),
            ("calibrate/spin".to_owned(), 42u128),
        ];
        let parsed = baseline_from_json(&baseline_to_json(&results));
        // Serialization sorts by name.
        assert_eq!(parsed.len(), 2);
        assert_eq!(median_of(&parsed, "calibrate/spin"), Some(42));
        assert_eq!(
            median_of(&parsed, "exec_skew/par_map/adaptive"),
            Some(1_234_567)
        );
        assert!(baseline_from_json("not json at all").is_empty());
    }

    #[test]
    fn regressions_detected_with_threshold() {
        let baseline = vec![("a".to_owned(), 1_000u128), ("b".to_owned(), 1_000u128)];
        let current = vec![
            ("a".to_owned(), 1_150u128),   // +15%: within a 20% gate
            ("b".to_owned(), 1_300u128),   // +30%: regression
            ("new".to_owned(), 9_999u128), // not in baseline: ignored
        ];
        let regressions = find_regressions(&baseline, &current, 20.0, &PctOverrides::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].0, "b");
        assert!(find_regressions(&baseline, &current, 50.0, &PctOverrides::default()).is_empty());
    }

    #[test]
    fn per_bench_calibration_overrides_global() {
        // The machine throttled 2x during bench "a"'s measurement only:
        // its interleaved @cal pair captures that regime, so the doubled
        // median is not a regression — while the same numbers without
        // the pair (global calibration measured while still fast) fail.
        let baseline = vec![
            (CALIBRATION_BENCH.to_owned(), 1_000u128),
            ("a".to_owned(), 10_000u128),
            ("a@cal".to_owned(), 1_000u128),
        ];
        let current = vec![
            (CALIBRATION_BENCH.to_owned(), 1_000u128),
            ("a".to_owned(), 20_000u128),
            ("a@cal".to_owned(), 2_000u128),
        ];
        assert!(find_regressions(&baseline, &current, 20.0, &PctOverrides::default()).is_empty());
        let strip = |side: &[(String, u128)]| {
            side.iter()
                .filter(|(n, _)| !n.ends_with(CAL_SUFFIX))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(
            find_regressions(
                &strip(&baseline),
                &strip(&current),
                20.0,
                &PctOverrides::default()
            )
            .len(),
            1,
            "without the @cal pair the throttle reads as a regression"
        );
    }

    #[test]
    fn missing_benchmarks_are_reported() {
        let baseline = vec![
            (CALIBRATION_BENCH.to_owned(), 100u128),
            ("tree/kept".to_owned(), 1_000u128),
            ("tree/renamed_away".to_owned(), 1_000u128),
            // A group this process never ran: owned by another bench
            // binary sharing the baseline file, so never required here.
            ("other_binary/bench".to_owned(), 1_000u128),
        ];
        let current = vec![
            (CALIBRATION_BENCH.to_owned(), 100u128),
            ("tree/kept".to_owned(), 1_000u128),
        ];
        // The calibration bench is bookkeeping, never reported missing.
        assert_eq!(
            missing_from_current(&baseline, &current),
            vec!["tree/renamed_away".to_owned()]
        );
        assert!(missing_from_current(&current, &baseline).is_empty());
    }

    #[test]
    fn required_groups_catch_whole_group_renames() {
        let current = vec![
            ("view_zoom/deep6/view".to_owned(), 100u128),
            (CALIBRATION_BENCH.to_owned(), 100u128),
        ];
        std::env::set_var("CRITERION_REQUIRE_GROUPS", "view_zoom, exec_skew");
        let missing = missing_groups(&current);
        std::env::remove_var("CRITERION_REQUIRE_GROUPS");
        assert_eq!(missing, vec!["exec_skew".to_owned()]);
        assert!(
            missing_groups(&current).is_empty(),
            "unset env requires nothing"
        );
    }

    #[test]
    fn pct_overrides_resolve_exact_then_prefix() {
        let o = PctOverrides::parse("view_zoom/deep6/materialize=40, exec_skew/*=35;bad");
        assert_eq!(o.allowed_pct("view_zoom/deep6/materialize", 20.0), 40.0);
        assert_eq!(o.allowed_pct("view_zoom/deep6/view", 20.0), 20.0);
        assert_eq!(o.allowed_pct("exec_skew/par_map/static", 20.0), 35.0);
        // Longest prefix wins; exact beats prefix.
        let o = PctOverrides::parse("a/*=30,a/b/*=40,a/b/c=50");
        assert_eq!(o.allowed_pct("a/x", 20.0), 30.0);
        assert_eq!(o.allowed_pct("a/b/x", 20.0), 40.0);
        assert_eq!(o.allowed_pct("a/b/c", 20.0), 50.0);
        // Overrides loosen or tighten the regression gate per benchmark.
        let baseline = vec![("a/b/x".to_owned(), 1_000u128)];
        let current = vec![("a/b/x".to_owned(), 1_300u128)];
        assert_eq!(
            find_regressions(&baseline, &current, 20.0, &PctOverrides::default()).len(),
            1
        );
        assert!(
            find_regressions(&baseline, &current, 20.0, &PctOverrides::parse("a/b/*=40"))
                .is_empty()
        );
    }

    #[test]
    fn calibration_rescales_baseline() {
        // Baseline machine was 2x slower (calibration 2000 vs 1000): a
        // current median at ~55% of the baseline's absolute value is NOT
        // a regression once normalized, and 70% is.
        let baseline = vec![
            (CALIBRATION_BENCH.to_owned(), 2_000u128),
            ("a".to_owned(), 10_000u128),
        ];
        let ok = vec![
            (CALIBRATION_BENCH.to_owned(), 1_000u128),
            ("a".to_owned(), 5_500u128),
        ];
        assert!(find_regressions(&baseline, &ok, 20.0, &PctOverrides::default()).is_empty());
        let slow = vec![
            (CALIBRATION_BENCH.to_owned(), 1_000u128),
            ("a".to_owned(), 7_000u128),
        ];
        let regressions = find_regressions(&baseline, &slow, 20.0, &PctOverrides::default());
        assert_eq!(regressions.len(), 1, "40% normalized regression");
    }

    /// Interleaving note: sibling tests (`bench_function_measures`,
    /// `groups_and_batched`) push into the process-global `RESULTS` in
    /// parallel, so a finalize() here may carry a stray entry. That
    /// cannot flip any gate assertion: each stray name is pushed exactly
    /// once per process, finalize() *takes* the buffer, so a stray lands
    /// on at most one side of a comparison — and `find_regressions`
    /// skips names missing from either side. Only `gate/bench`, pushed
    /// here with fixed values, is ever compared. The `CRITERION_*` env
    /// vars are read by finalize() alone, which no other test calls.
    #[test]
    fn finalize_saves_and_gates() {
        let dir = std::env::temp_dir();
        let base_path = dir.join("criterion_shim_test_baseline.json");
        let pr_path = dir.join("criterion_shim_test_pr.json");
        let run = |ns: u64| {
            RESULTS
                .lock()
                .unwrap()
                .push(("gate/bench".to_owned(), u128::from(ns)));
        };

        run(1_000);
        std::env::set_var("CRITERION_SAVE_BASELINE", &base_path);
        assert!(finalize(), "save-only run cannot fail the gate");
        std::env::remove_var("CRITERION_SAVE_BASELINE");

        std::env::set_var("CRITERION_BASELINE", &base_path);
        std::env::set_var("CRITERION_SAVE_BASELINE", &pr_path);
        run(1_100);
        assert!(finalize(), "+10% is within the default 20% gate");
        run(2_000);
        assert!(!finalize(), "+100% must fail the gate");
        assert!(pr_path.exists(), "comparison runs still save their medians");

        std::env::set_var("CRITERION_REGRESSION_PCT", "150");
        run(2_000);
        assert!(finalize(), "configurable threshold widens the gate");

        std::env::remove_var("CRITERION_BASELINE");
        std::env::remove_var("CRITERION_SAVE_BASELINE");
        std::env::remove_var("CRITERION_REGRESSION_PCT");
        let _ = std::fs::remove_file(base_path);
        let _ = std::fs::remove_file(pr_path);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0usize;
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| total += v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert!(total >= 4 * 3);
    }
}
