//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the criterion API surface blaeu's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`] and
//! [`black_box`] — over a simple wall-clock measurement loop. It reports
//! median / mean per-iteration time to stdout; there is no statistical
//! analysis, HTML report or saved baseline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted for compatibility; the shim
/// times one routine invocation per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            timings: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up invocation outside the measurement.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    let mut timings = bencher.timings;
    if timings.is_empty() {
        println!("{name:<50} (no measurement)");
        return;
    }
    timings.sort_unstable();
    let median = timings[timings.len() / 2];
    let mean = timings.iter().sum::<Duration>() / timings.len() as u32;
    println!(
        "{name:<50} median {:>10}   mean {:>10}   ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        timings.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<N, F>(&mut self, id: N, f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        F: FnOnce(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.samples, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        I: ?Sized,
        F: FnOnce(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.samples, |b| f(b, input));
        self
    }

    /// Finishes the group (flush point; kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, self.samples, f);
        self
    }
}

/// Declares a group of benchmark functions (shim for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups (shim for
/// `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 1, "routine should run warm-up + samples");
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0usize;
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| total += v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert!(total >= 4 * 3);
    }
}
