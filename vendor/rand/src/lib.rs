//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! this workspace vendors the *subset* of the `rand 0.8` API that blaeu
//! actually uses: [`RngCore`], [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] and [`seq::SliceRandom::shuffle`].
//! Semantics match upstream (half-open / inclusive ranges, rejection
//! sampling for unbiased integers, 53-bit uniform floats, Fisher–Yates
//! shuffling); bit-streams are *not* guaranteed to match upstream rand,
//! which is fine because nothing in this repo depends on upstream golden
//! values — only on seeded determinism within this workspace.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is vendored).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Uniform draw from `0..span` without modulo bias (rejection sampling).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let v = rng.gen_range(0usize..=9);
            assert!(v <= 9);
            let v = rng.gen_range(-4i64..6);
            assert!((-4..6).contains(&v));
            let v = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
