//! Vendored stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha stream cipher (D. J. Bernstein) with 8
//! rounds as a deterministic, portable, seedable RNG. The keystream is a
//! faithful ChaCha8 keystream; only the `seed_from_u64` key-expansion step
//! (SplitMix64, as in upstream `rand`) and the word-to-output mapping are
//! implementation details of this shim, so seeded sequences are stable
//! across platforms and releases of this workspace but are not guaranteed
//! to match upstream `rand_chacha` bit-for-bit.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// SplitMix64 step, used to expand a 64-bit seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// ChaCha with a configurable (const) number of double rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

/// ChaCha8: 8 rounds (4 double rounds) — the fast variant used by blaeu.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha12: 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha20: the full-strength 20-round variant.
pub type ChaCha20Rng = ChaChaRng<10>;

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        let mut rng = ChaChaRng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity check: bit balance over many draws.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        let draws = 10_000;
        for _ in 0..draws {
            ones += rng.next_u64().count_ones() as u64;
        }
        let expected = draws * 32;
        let dev = (ones as i64 - expected as i64).abs();
        assert!(dev < 6_000, "bit balance off: {ones} vs {expected}");
    }

    #[test]
    fn blocks_do_not_repeat() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
