//! Vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free,
//! poison-free API surface (`lock()` / `read()` / `write()` returning
//! guards directly). Poisoned std locks are recovered transparently —
//! parking_lot has no poisoning, so neither does this shim.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (no poisoning, like `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock (no poisoning, like `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable (parking_lot-style API: `wait` takes the guard by
/// mutable reference instead of by value).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the mutex while parked
    /// and re-acquiring it before returning (spurious wakeups possible,
    /// as with any condvar).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's Condvar consumes the guard and returns a fresh one;
        // parking_lot's mutates it in place. Bridge by moving the guard
        // out through the reference and writing the re-acquired one back.
        // The only fallible step between read and write is the wait itself,
        // which cannot unwind for a guard/condvar pair used consistently
        // (poisoning is absorbed); abort rather than risk a double unlock
        // if that assumption is ever violated.
        struct AbortOnUnwind;
        impl Drop for AbortOnUnwind {
            fn drop(&mut self) {
                std::process::abort();
            }
        }
        unsafe {
            let taken = std::ptr::read(guard);
            let bomb = AbortOnUnwind;
            let reacquired = self.0.wait(taken).unwrap_or_else(PoisonError::into_inner);
            std::mem::forget(bomb);
            std::ptr::write(guard, reacquired);
        }
    }

    /// Waits until `condition` returns false (parking_lot's `wait_while`:
    /// the wait continues *while* the predicate holds).
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut **guard) {
            self.wait(guard);
        }
    }

    /// Wakes one parked thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // test harness threads, not engine parallelism
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_handoff() {
        let shared = Arc::new((Mutex::new(0usize), Condvar::new()));
        let mut producers = Vec::new();
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            producers.push(std::thread::spawn(move || {
                *shared.0.lock() += 1;
                shared.1.notify_all();
            }));
        }
        {
            let (lock, cv) = &*shared;
            let mut guard = lock.lock();
            cv.wait_while(&mut guard, |count| *count < 4);
            assert_eq!(*guard, 4);
        }
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn condvar_wait_wakes_on_notify_one() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut done = shared.0.lock();
                while !*done {
                    shared.1.wait(&mut done);
                }
            })
        };
        *shared.0.lock() = true;
        shared.1.notify_one();
        waiter.join().unwrap();
    }
}
