//! Vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free,
//! poison-free API surface (`lock()` / `read()` / `write()` returning
//! guards directly). Poisoned std locks are recovered transparently —
//! parking_lot has no poisoning, so neither does this shim.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (no poisoning, like `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock (no poisoning, like `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
