//! Vendored stand-in for the `proptest` crate.
//!
//! Implements the subset blaeu's property tests rely on: the [`Strategy`]
//! trait with `prop_map`, range / tuple / `any` / collection / option /
//! simple-regex string strategies, the [`proptest!`] test macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` macros. Cases are
//! generated from a deterministic per-test RNG, so failures are
//! reproducible; there is **no shrinking** — a failing case reports its
//! case number and message and panics immediately.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a named test (name-hashed seed, so different
    /// tests see different but reproducible streams).
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..span` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Failure raised by `prop_assert*` or returned from a test body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The generated input was rejected (case is skipped, not failed).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Per-test configuration (`cases` is the number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and check.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator (shim for `proptest::strategy::Strategy`; generation
/// only, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; rejected values are regenerated (up to an
    /// attempt cap, then the test case is rejected).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// String strategy from a simplified regex pattern (`&'static str`).
///
/// Supported syntax: one character class `[...]` (with `a-z` ranges and
/// `\n` / `\t` / `\\` / escaped literals) or a literal prefix, followed by
/// an optional `{n}` / `{lo,hi}` repetition. This covers the patterns used
/// in this repo; anything fancier panics loudly.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_simple_regex(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_simple_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut alphabet = Vec::new();

    if i < chars.len() && chars[i] == '[' {
        i += 1;
        let mut class = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                match chars.get(i) {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(&c) => c,
                    None => panic!("dangling escape in pattern {pattern:?}"),
                }
            } else {
                chars[i]
            };
            class.push(c);
            i += 1;
        }
        assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
        i += 1; // consume ']'

        // Expand x-y ranges.
        let mut j = 0;
        while j < class.len() {
            if j + 2 < class.len() && class[j + 1] == '-' {
                let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c).expect("valid range char"));
                }
                j += 3;
            } else {
                alphabet.push(class[j]);
                j += 1;
            }
        }
    } else {
        // Literal string: no repetition parsing, emit it verbatim once.
        return (chars.clone(), chars.len(), chars.len());
    }

    // Optional repetition.
    let (mut lo, mut hi) = (1usize, 1usize);
    if i < chars.len() && chars[i] == '{' {
        let rest: String = chars[i + 1..].iter().collect();
        let close = rest.find('}').expect("unterminated repetition");
        let spec = &rest[..close];
        if let Some((a, b)) = spec.split_once(',') {
            lo = a.trim().parse().expect("repetition lower bound");
            hi = b.trim().parse().expect("repetition upper bound");
        } else {
            lo = spec.trim().parse().expect("repetition count");
            hi = lo;
        }
        i += close + 2;
    }
    assert!(
        i == chars.len(),
        "unsupported regex tail {:?} in pattern {pattern:?}",
        &pattern[i.min(pattern.len())..]
    );
    assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
    assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
    (alphabet, lo, hi)
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Full-domain strategy for primitive `T` (shim for `proptest::arbitrary::any`).
pub fn any<T>() -> AnyStrategy<T>
where
    AnyStrategy<T>: Strategy<Value = T>,
{
    AnyStrategy(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for AnyStrategy<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite floats over a wide range (no NaN/inf, as tests expect
        // arithmetic to behave).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * 2f64.powi(exp)
    }
}

/// Namespaced strategy constructors (shim for the `proptest::prop` facade).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is uniform in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                assert!(self.size.start < self.size.end, "empty size range");
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>` (≈50% `Some`).
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `None` half the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Asserts a property inside a [`proptest!`] body; failure fails the case
/// (with the formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests (shim for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat in $strategy:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest {} failed at case {}/{}: {}",
                                stringify!($name), case + 1, config.cases, message
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let xs = Strategy::generate(&prop::collection::vec(0u32..5, 2..7), &mut rng);
            assert!((2..7).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn regex_strategy_parses_class_and_repetition() {
        let mut rng = TestRng::for_test("regex");
        let pattern = "[a-c,\"\n ]{0,12}";
        for _ in 0..200 {
            let s = Strategy::generate(&pattern, &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| matches!(c, 'a'..='c' | ',' | '"' | '\n' | ' ')));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0usize..100, (a, b) in (0i64..5, 0i64..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(x as i64, -1);
        }

        #[test]
        fn prop_map_transforms(v in prop::collection::vec(any::<bool>(), 1..20)
            .prop_map(|bits| bits.len())) {
            prop_assert!((1..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0usize..10) {
                prop_assert!(x < 5, "x was {}", x);
            }
        }
        inner();
    }
}
