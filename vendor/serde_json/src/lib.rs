//! Vendored stand-in for the `serde_json` crate.
//!
//! Provides the document model ([`Value`], [`Number`], [`Map`]), the
//! [`json!`] construction macro, the [`to_string`] /
//! [`to_string_pretty`] serializers and the [`from_str`] / [`from_slice`]
//! parsers — the subset blaeu's renderers and network transport use.
//! There is no serde derive integration; values are built with `json!`
//! or parsed from RFC 8259 text into [`Value`] trees.
//!
//! The parser is hardened for wire input: nesting depth is capped (a
//! hostile `[[[[…]]]]` body errors instead of overflowing the stack),
//! numbers must be finite, and every error carries the 1-based line and
//! column where parsing failed (as upstream's `Error::line`/`column`).

use std::fmt;

/// A JSON number: unsigned, signed or floating.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float (non-finite floats serialize as `null` upstream; the
    /// shim stores them and serializes them as `null` too).
    F64(f64),
}

impl Number {
    /// Value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    /// Value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }

    /// Value as `f64` (always representable, possibly lossily).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(v) => Some(v as f64),
            Number::I64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }
}

impl PartialEq for Number {
    /// Numeric equality across representations: `U64(3) == I64(3)` and
    /// `F64(3.0) == U64(3)` (as in serde_json's cross-variant comparisons).
    fn eq(&self, other: &Self) -> bool {
        use Number::{F64, I64, U64};
        match (*self, *other) {
            (U64(a), U64(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (U64(a), I64(b)) | (I64(b), U64(a)) => i64::try_from(a) == Ok(b),
            (F64(a), F64(b)) => a == b,
            (F64(f), U64(u)) | (U64(u), F64(f)) => f == u as f64,
            (F64(f), I64(i)) | (I64(i), F64(f)) => f == i as f64,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// An order-preserving JSON object (insertion order, like serde_json's
/// `preserve_order` feature).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON document node.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries, when this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field access; `Null` for missing keys / non-objects (like
    /// serde_json's `Index` behavior).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $variant:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(clippy::cast_lossless)]
                match self {
                    Value::Number(n) => *n == Number::$variant(*other as _),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_num!(u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64,
                   i8 => I64, i16 => I64, i32 => I64, i64 => I64, isize => I64,
                   f64 => F64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Conversion into [`Value`] by reference — the shim's substitute for
/// `serde::Serialize`, used by the [`json!`] macro.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty => $variant:ident),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                #[allow(clippy::cast_lossless)]
                Value::Number(Number::$variant(*self as _))
            }
        }
    )*};
}

impl_to_json_num!(u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64,
                  i8 => I64, i16 => I64, i32 => I64, i64 => I64, isize => I64,
                  f32 => F64, f64 => F64);

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

/// Builds a [`Value`] from a JSON-shaped literal (shim for `serde_json::json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::ToJson::to_json(&($value))); )*
        $crate::Value::Object(map)
    }};
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&($element)) ),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&($other)) };
}

/// Serialization or parse error. Serialization never fails in practice
/// (the variant exists for signature compatibility); parse errors carry
/// the 1-based position where the input stopped being valid JSON.
#[derive(Debug)]
pub struct Error {
    message: String,
    line: usize,
    column: usize,
}

impl Error {
    fn parse(message: impl Into<String>, line: usize, column: usize) -> Self {
        Error {
            message: message.into(),
            line,
            column,
        }
    }

    /// 1-based line of the parse failure (0 for serialization errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the parse failure (0 for serialization errors).
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(
                f,
                "{} at line {} column {}",
                self.message, self.line, self.column
            )
        }
    }
}

impl std::error::Error for Error {}

/// Serialization result.
pub type Result<T> = std::result::Result<T, Error>;

/// Maximum container nesting [`from_str`] accepts. Wire input beyond
/// this depth is adversarial (or broken) and errors instead of risking
/// a stack overflow in the recursive-descent parser.
const MAX_PARSE_DEPTH: usize = 128;

/// 1-based (line, column) of byte offset `pos` within `bytes` — shared
/// by the parser's error path and [`from_slice`]'s UTF-8 rejection.
fn text_position(bytes: &[u8], pos: usize) -> (usize, usize) {
    let upto = &bytes[..pos.min(bytes.len())];
    let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
    let column = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, column)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    /// 1-based (line, column) of the current cursor, computed only on
    /// the error path — the happy path never pays for position tracking.
    fn position(&self) -> (usize, usize) {
        text_position(self.bytes, self.pos)
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        let (line, column) = self.position();
        Err(Error::parse(message, line, column))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected {:?}", char::from(byte)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_PARSE_DEPTH {
            return self.error(format!(
                "recursion limit exceeded (depth {MAX_PARSE_DEPTH})"
            ));
        }
        self.skip_whitespace();
        match self.peek() {
            None => self.error("expected value"),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => self.error("expected value"),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            self.error("expected value")
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.error("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return self.error("expected object key string");
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value); // duplicate keys: last one wins
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.error("expected ',' or '}'"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a low surrogate escape
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return self.error("unpaired surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return self.error("unpaired surrogate");
                                }
                                self.pos += 1;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return self.error("unpaired surrogate");
                                }
                                let combined = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.error("invalid unicode escape"),
                            }
                            continue; // parse_hex4 already advanced past the digits
                        }
                        _ => return self.error("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return self.error("control character in string"),
                Some(_) => {
                    // Multi-byte UTF-8 sequences are valid already (the
                    // input is a &str); copy the whole scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).expect("input was a str");
                    let c = text.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consumes exactly four hex digits and returns their value. The
    /// cursor ends past the digits.
    fn parse_hex4(&mut self) -> Result<u32> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return self.error("invalid hex escape"),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.error("expected digit"),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.error("expected fraction digit");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.error("expected exponent digit");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
            // Integer out of 64-bit range: fall through to f64 like
            // upstream's arbitrary_precision-less behavior.
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::Number(Number::F64(v))),
            _ => self.error("number out of range"),
        }
    }
}

/// Parses JSON text into a [`Value`] (shim for
/// `serde_json::from_str::<Value>`). Rejects trailing non-whitespace,
/// nesting deeper than 128 containers, and non-finite numbers; errors
/// report the 1-based line/column of the failure.
///
/// # Errors
/// [`Error`] with position info when the input is not valid JSON.
pub fn from_str(text: &str) -> Result<Value> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return parser.error("trailing characters");
    }
    Ok(value)
}

/// Parses JSON bytes into a [`Value`] (shim for
/// `serde_json::from_slice::<Value>`). Invalid UTF-8 is a parse error,
/// not a panic.
///
/// # Errors
/// As [`from_str`], plus a positioned error for invalid UTF-8.
pub fn from_slice(bytes: &[u8]) -> Result<Value> {
    match std::str::from_utf8(bytes) {
        Ok(text) => from_str(text),
        Err(e) => {
            let (line, column) = text_position(bytes, e.valid_up_to());
            Err(Error::parse("invalid UTF-8", line, column))
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(2), 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_indexes() {
        let name = "blaeu".to_owned();
        let v = json!({
            "name": name,
            "count": 3usize,
            "score": 0.5,
            "tags": ["a", "b"],
            "missing": Option::<usize>::None,
            "nested": json!({"deep": true}),
        });
        assert_eq!(v["name"], "blaeu");
        assert_eq!(v["count"], 3);
        assert_eq!(v["score"], 0.5);
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
        assert!(v["missing"].is_null());
        assert!(v["nested"].is_object());
        assert_eq!(v["nested"]["deep"], true);
        assert!(v["ghost"].is_null());
        assert_eq!(v["count"].as_u64(), Some(3));
    }

    #[test]
    fn serializes_compact_and_pretty() {
        let v = json!({"a": [1usize, 2usize], "s": "he said \"hi\"\n"});
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"a\":[1,2],\"s\":\"he said \\\"hi\\\"\\n\"}");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
    }

    #[test]
    fn parses_scalars_containers_and_escapes() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), true);
        assert_eq!(from_str(" -3 ").unwrap(), -3i64);
        assert_eq!(from_str("42").unwrap(), 42u64);
        assert_eq!(from_str("2.5e1").unwrap(), 25.0);
        assert!(from_str("1e400").unwrap_err().to_string().contains("range"));
        let v = from_str(r#"{"a": [1, {"b": "x\ny \u00e9 \ud83d\ude00"}], "a": 2}"#).unwrap();
        assert_eq!(v["a"], 2, "duplicate keys: last wins");
        let nested = from_str(r#"[{"k": "he said \"hi\"/\\"}]"#).unwrap();
        assert_eq!(nested[0]["k"], "he said \"hi\"/\\");
        let uni = from_str(r#""x\ny \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(uni, "x\ny é 😀");
    }

    #[test]
    fn parse_roundtrips_serialized_values() {
        let v = json!({
            "name": "blaeu \"quoted\"\n",
            "count": 3usize,
            "neg": -7i64,
            "score": 0.5,
            "tags": json!(["a", "b", Value::Null]),
            "nested": json!({"deep": [true, false]}),
        });
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors_carry_positions() {
        let e = from_str("{\"a\": }").unwrap_err();
        assert_eq!((e.line(), e.column()), (1, 7), "{e}");
        let e = from_str("[1,\n 2,\n x]").unwrap_err();
        assert_eq!(e.line(), 3, "{e}");
        assert!(e.to_string().contains("line 3"), "{e}");
        for bad in [
            "",
            "tru",
            "nul ",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{a: 1}",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "-",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "[1],",
            "1 2",
            "NaN",
            "Infinity",
            "+1",
            "'single'",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_depth_is_capped_not_a_stack_overflow() {
        let mut hostile = String::new();
        for _ in 0..10_000 {
            hostile.push('[');
        }
        let e = from_str(&hostile).unwrap_err();
        assert!(e.to_string().contains("recursion limit"), "{e}");
        // A merely deep-but-legal document under the cap still parses.
        let mut legal = String::new();
        for _ in 0..100 {
            legal.push('[');
        }
        for _ in 0..100 {
            legal.push(']');
        }
        assert!(from_str(&legal).is_ok());
    }

    #[test]
    fn from_slice_rejects_invalid_utf8() {
        assert_eq!(from_slice(b"{\"a\": 1}").unwrap()["a"], 1);
        let e = from_slice(&[b'"', 0xff, b'"']).unwrap_err();
        assert!(e.to_string().contains("UTF-8"), "{e}");
    }

    #[test]
    fn insertion_order_preserved_and_replaced() {
        let mut m = Map::new();
        m.insert("b".into(), json!(1usize));
        m.insert("a".into(), json!(2usize));
        assert_eq!(
            m.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["b", "a"]
        );
        let old = m.insert("b".into(), json!(9usize));
        assert_eq!(old, Some(json!(1usize)));
        assert_eq!(m.len(), 2);
    }
}
