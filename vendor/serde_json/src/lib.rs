//! Vendored stand-in for the `serde_json` crate.
//!
//! Provides the document model ([`Value`], [`Number`], [`Map`]), the
//! [`json!`] construction macro and the [`to_string`] /
//! [`to_string_pretty`] serializers — the subset blaeu's renderers use.
//! There is no serde integration and no parser; values are built with
//! `json!` and serialized to RFC 8259-conformant text.

use std::fmt;

/// A JSON number: unsigned, signed or floating.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float (non-finite floats serialize as `null` upstream; the
    /// shim stores them and serializes them as `null` too).
    F64(f64),
}

impl Number {
    /// Value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    /// Value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(_) => None,
        }
    }

    /// Value as `f64` (always representable, possibly lossily).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(v) => Some(v as f64),
            Number::I64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }
}

impl PartialEq for Number {
    /// Numeric equality across representations: `U64(3) == I64(3)` and
    /// `F64(3.0) == U64(3)` (as in serde_json's cross-variant comparisons).
    fn eq(&self, other: &Self) -> bool {
        use Number::{F64, I64, U64};
        match (*self, *other) {
            (U64(a), U64(b)) => a == b,
            (I64(a), I64(b)) => a == b,
            (U64(a), I64(b)) | (I64(b), U64(a)) => i64::try_from(a) == Ok(b),
            (F64(a), F64(b)) => a == b,
            (F64(f), U64(u)) | (U64(u), F64(f)) => f == u as f64,
            (F64(f), I64(i)) | (I64(i), F64(f)) => f == i as f64,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v}"),
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// An order-preserving JSON object (insertion order, like serde_json's
/// `preserve_order` feature).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON document node.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field access; `Null` for missing keys / non-objects (like
    /// serde_json's `Index` behavior).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $variant:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(clippy::cast_lossless)]
                match self {
                    Value::Number(n) => *n == Number::$variant(*other as _),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_num!(u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64,
                   i8 => I64, i16 => I64, i32 => I64, i64 => I64, isize => I64,
                   f64 => F64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Conversion into [`Value`] by reference — the shim's substitute for
/// `serde::Serialize`, used by the [`json!`] macro.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty => $variant:ident),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                #[allow(clippy::cast_lossless)]
                Value::Number(Number::$variant(*self as _))
            }
        }
    )*};
}

impl_to_json_num!(u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64,
                  i8 => I64, i16 => I64, i32 => I64, i64 => I64, isize => I64,
                  f32 => F64, f64 => F64);

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

/// Builds a [`Value`] from a JSON-shaped literal (shim for `serde_json::json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::ToJson::to_json(&($value))); )*
        $crate::Value::Object(map)
    }};
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&($element)) ),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&($other)) };
}

/// Serialization error (the shim's serializers are infallible in practice;
/// the type exists for signature compatibility).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialization result.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(2), 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_indexes() {
        let name = "blaeu".to_owned();
        let v = json!({
            "name": name,
            "count": 3usize,
            "score": 0.5,
            "tags": ["a", "b"],
            "missing": Option::<usize>::None,
            "nested": json!({"deep": true}),
        });
        assert_eq!(v["name"], "blaeu");
        assert_eq!(v["count"], 3);
        assert_eq!(v["score"], 0.5);
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
        assert!(v["missing"].is_null());
        assert!(v["nested"].is_object());
        assert_eq!(v["nested"]["deep"], true);
        assert!(v["ghost"].is_null());
        assert_eq!(v["count"].as_u64(), Some(3));
    }

    #[test]
    fn serializes_compact_and_pretty() {
        let v = json!({"a": [1usize, 2usize], "s": "he said \"hi\"\n"});
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"a\":[1,2],\"s\":\"he said \\\"hi\\\"\\n\"}");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
    }

    #[test]
    fn insertion_order_preserved_and_replaced() {
        let mut m = Map::new();
        m.insert("b".into(), json!(1usize));
        m.insert("a".into(), json!(2usize));
        assert_eq!(
            m.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["b", "a"]
        );
        let old = m.insert("b".into(), json!(9usize));
        assert_eq!(old, Some(json!(1usize)));
        assert_eq!(m.len(), 2);
    }
}
